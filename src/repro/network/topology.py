"""Aggregation-tree topologies.

The paper assumes "the sensors are organized into a tree topology, with
the sources being the leaves and the aggregators representing the
internal nodes" (Section III-A), and its experiments use a *complete*
tree of fanout ``F`` over ``N`` sources (Section VI).  Topology
construction/maintenance is declared orthogonal to the scheme, so this
module provides deterministic builders and structural validation but no
routing dynamics.

Node identifiers: sources are ``0 … N-1`` (matching protocol source
ids); aggregators get ids ``N, N+1, …`` assigned bottom-up.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.utils.rng import DeterministicRandom
from repro.utils.validation import check_positive_int

__all__ = [
    "TreeNode",
    "AggregationTree",
    "build_complete_tree",
    "build_random_tree",
    "build_chain_tree",
]


@dataclass
class TreeNode:
    """One vertex of the aggregation tree."""

    node_id: int
    is_source: bool
    parent_id: int | None = None
    children: list[int] = field(default_factory=list)
    #: Distance to parent in meters (for the radio energy model).
    link_distance_m: float = 10.0

    @property
    def is_aggregator(self) -> bool:
        return not self.is_source


class AggregationTree:
    """A validated rooted tree with source leaves and aggregator internals.

    The root aggregator is the *sink* — the only node the querier talks
    to.  Construction validates the structural invariants the protocols
    rely on: exactly one root, every source is a leaf, every aggregator
    has at least one child, no cycles, all nodes reachable from the root.
    """

    def __init__(self, nodes: Sequence[TreeNode]) -> None:
        self._nodes: dict[int, TreeNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise TopologyError(f"duplicate node id {node.node_id}")
            self._nodes[node.node_id] = node
        self._validate()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def root_id(self) -> int:
        return self._root_id

    @property
    def num_sources(self) -> int:
        return len(self._source_ids)

    @property
    def num_aggregators(self) -> int:
        return len(self._nodes) - len(self._source_ids)

    @property
    def source_ids(self) -> tuple[int, ...]:
        return self._source_ids

    @property
    def aggregator_ids(self) -> tuple[int, ...]:
        return tuple(i for i in self._nodes if self._nodes[i].is_aggregator)

    def node(self, node_id: int) -> TreeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"no node with id {node_id}") from None

    def children(self, node_id: int) -> tuple[int, ...]:
        return tuple(self.node(node_id).children)

    def parent(self, node_id: int) -> int | None:
        return self.node(node_id).parent_id

    def fanout(self, node_id: int) -> int:
        return len(self.node(node_id).children)

    def max_fanout(self) -> int:
        return max((len(n.children) for n in self._nodes.values()), default=0)

    def depth(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        best = 0
        stack = [(self._root_id, 0)]
        while stack:
            nid, d = stack.pop()
            best = max(best, d)
            for child in self._nodes[nid].children:
                stack.append((child, d + 1))
        return best

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TreeNode]:
        return iter(self._nodes.values())

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def bottom_up_aggregators(self) -> list[int]:
        """Aggregator ids ordered so children always precede parents.

        This is the merge schedule the simulator executes each epoch.
        """
        order: list[int] = []
        # Iterative post-order from the root.
        stack: list[tuple[int, bool]] = [(self._root_id, False)]
        while stack:
            nid, expanded = stack.pop()
            node = self._nodes[nid]
            if node.is_source:
                continue
            if expanded:
                order.append(nid)
            else:
                stack.append((nid, True))
                for child in node.children:
                    stack.append((child, False))
        return order

    def leaves_under(self, node_id: int) -> list[int]:
        """Source ids in the subtree rooted at *node_id*."""
        sources: list[int] = []
        stack = [node_id]
        while stack:
            nid = stack.pop()
            node = self._nodes[nid]
            if node.is_source:
                sources.append(nid)
            else:
                stack.extend(node.children)
        return sources

    def path_to_root(self, node_id: int) -> list[int]:
        """Node ids from *node_id* up to (and including) the root."""
        path = [node_id]
        current = self.node(node_id)
        while current.parent_id is not None:
            path.append(current.parent_id)
            current = self.node(current.parent_id)
        return path

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if not self._nodes:
            raise TopologyError("tree has no nodes")
        roots = [n.node_id for n in self._nodes.values() if n.parent_id is None]
        if len(roots) != 1:
            raise TopologyError(f"tree must have exactly one root, found {len(roots)}")
        self._root_id = roots[0]
        if self._nodes[self._root_id].is_source:
            if len(self._nodes) > 1:
                raise TopologyError("root must be an aggregator in multi-node trees")

        for node in self._nodes.values():
            if node.is_source and node.children:
                raise TopologyError(f"source {node.node_id} must be a leaf")
            if node.is_aggregator and not node.children:
                raise TopologyError(f"aggregator {node.node_id} has no children")
            for child in node.children:
                if child not in self._nodes:
                    raise TopologyError(f"node {node.node_id} references missing child {child}")
                if self._nodes[child].parent_id != node.node_id:
                    raise TopologyError(
                        f"child {child} does not point back to parent {node.node_id}"
                    )

        # Reachability / acyclicity: BFS from root must visit all nodes once.
        seen: set[int] = set()
        queue = [self._root_id]
        while queue:
            nid = queue.pop()
            if nid in seen:
                raise TopologyError(f"cycle detected at node {nid}")
            seen.add(nid)
            queue.extend(self._nodes[nid].children)
        if seen != set(self._nodes):
            orphans = sorted(set(self._nodes) - seen)
            raise TopologyError(f"nodes unreachable from root: {orphans[:5]}")

        self._source_ids = tuple(sorted(n.node_id for n in self._nodes.values() if n.is_source))


def build_complete_tree(
    num_sources: int, fanout: int, *, link_distance_m: float = 10.0
) -> AggregationTree:
    """The paper's experimental topology: an (as-)complete fanout-``F`` tree.

    Sources ``0 … N-1`` form the leaf level; aggregators are created
    level by level, grouping up to ``F`` nodes under each parent, until a
    single root (the sink) remains.  When ``N`` is a power of ``F`` this
    is the complete F-ary tree of the paper; otherwise the last parent of
    each level takes the remainder.
    """
    check_positive_int("num_sources", num_sources)
    check_positive_int("fanout", fanout)
    if fanout < 2 and num_sources > 1:
        raise TopologyError("fanout must be at least 2 for multi-source trees")

    nodes: dict[int, TreeNode] = {
        i: TreeNode(node_id=i, is_source=True, link_distance_m=link_distance_m)
        for i in range(num_sources)
    }
    next_id = num_sources
    level = list(range(num_sources))
    if num_sources == 1:
        # Even a single source reports through one aggregator (the sink).
        sink = TreeNode(node_id=next_id, is_source=False, link_distance_m=link_distance_m)
        sink.children = [0]
        nodes[0].parent_id = next_id
        nodes[next_id] = sink
        return AggregationTree(list(nodes.values()))

    while len(level) > 1:
        parents: list[int] = []
        for start in range(0, len(level), fanout):
            group = level[start : start + fanout]
            parent = TreeNode(node_id=next_id, is_source=False, link_distance_m=link_distance_m)
            parent.children = list(group)
            for child in group:
                nodes[child].parent_id = next_id
            nodes[next_id] = parent
            parents.append(next_id)
            next_id += 1
        level = parents
    return AggregationTree(list(nodes.values()))


def build_chain_tree(num_sources: int, *, link_distance_m: float = 10.0) -> AggregationTree:
    """The deepest legal topology: a chain of aggregators.

    Aggregator ``i`` has two children — source ``i`` and aggregator
    ``i+1`` — except the deepest, which holds the last source alone.
    Depth is ``num_sources``, the worst case for multi-hop effects;
    used to stress-test depth-independence of the protocols (SIES PSRs
    stay 32 bytes no matter how deep the merge chain is).
    """
    check_positive_int("num_sources", num_sources)
    if num_sources == 1:
        return build_complete_tree(1, 2, link_distance_m=link_distance_m)
    nodes: dict[int, TreeNode] = {
        i: TreeNode(node_id=i, is_source=True, link_distance_m=link_distance_m)
        for i in range(num_sources)
    }
    first_aggregator = num_sources
    for depth in range(num_sources - 1):
        aggregator_id = first_aggregator + depth
        source_child = depth
        children = [source_child]
        if depth < num_sources - 2:
            children.append(aggregator_id + 1)
        else:
            children.append(num_sources - 1)  # deepest aggregator takes 2 sources
            nodes[num_sources - 1].parent_id = aggregator_id
        nodes[source_child].parent_id = aggregator_id
        nodes[aggregator_id] = TreeNode(
            node_id=aggregator_id,
            is_source=False,
            parent_id=aggregator_id - 1 if depth > 0 else None,
            children=children,
            link_distance_m=link_distance_m,
        )
    return AggregationTree(list(nodes.values()))


def build_random_tree(
    num_sources: int,
    *,
    max_fanout: int = 4,
    seed: int = 0,
    link_distance_m: float = 10.0,
) -> AggregationTree:
    """A random aggregation tree (the paper allows arbitrary topologies).

    Builds bottom-up like :func:`build_complete_tree` but with random
    group sizes in ``[2, max_fanout]``, producing irregular trees for
    robustness tests.
    """
    check_positive_int("num_sources", num_sources)
    if max_fanout < 2:
        raise TopologyError("max_fanout must be at least 2")
    rng = DeterministicRandom(seed, "random-tree")

    nodes: dict[int, TreeNode] = {
        i: TreeNode(node_id=i, is_source=True, link_distance_m=link_distance_m)
        for i in range(num_sources)
    }
    next_id = num_sources
    level = list(range(num_sources))
    rng.shuffle(level)
    if num_sources == 1:
        return build_complete_tree(1, max_fanout, link_distance_m=link_distance_m)

    while len(level) > 1:
        parents: list[int] = []
        index = 0
        while index < len(level):
            size = rng.randint(2, max_fanout)
            group = level[index : index + size]
            if len(group) == 1 and parents:
                # Attach a lone leftover to the previous parent instead of
                # creating a single-child aggregator chain.
                nodes[parents[-1]].children.append(group[0])
                nodes[group[0]].parent_id = parents[-1]
                index += size
                continue
            parent = TreeNode(node_id=next_id, is_source=False, link_distance_m=link_distance_m)
            parent.children = list(group)
            for child in group:
                nodes[child].parent_id = next_id
            nodes[next_id] = parent
            parents.append(next_id)
            next_id += 1
            index += size
        level = parents
    return AggregationTree(list(nodes.values()))
