"""The (insecure) wireless channel with adversary hooks.

Every PSR hop goes through a :class:`Channel`, which

* classifies the edge (source→aggregator, aggregator→aggregator,
  aggregator→querier) and accumulates byte counters per class — the
  exact quantities of the paper's Table V and communication analysis;
* passes the message through registered *interceptors* in order.  An
  interceptor models an adversary (or a lossy link): it may return the
  message unchanged, a modified message, or ``None`` to drop it.

The channel is where the threat model lives: the paper's adversary "may
… infiltrate the wireless channel", so attacks in :mod:`repro.attacks`
are implemented purely as interceptors — protocols cannot tell the
difference, exactly as in a real deployment.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.network.messages import DataMessage

__all__ = ["EdgeClass", "Channel", "Interceptor", "TrafficCounters"]


class EdgeClass(enum.Enum):
    """The three edge classes whose traffic the paper reports."""

    SOURCE_TO_AGGREGATOR = "S-A"
    AGGREGATOR_TO_AGGREGATOR = "A-A"
    AGGREGATOR_TO_QUERIER = "A-Q"


#: An interceptor sees each message and may modify or drop it.
Interceptor = Callable[[DataMessage, EdgeClass], DataMessage | None]


@dataclass
class TrafficCounters:
    """Bytes and message counts accumulated per edge class."""

    bytes_by_class: dict[EdgeClass, int] = field(default_factory=dict)
    messages_by_class: dict[EdgeClass, int] = field(default_factory=dict)

    def record(self, edge_class: EdgeClass, size: int) -> None:
        self.bytes_by_class[edge_class] = self.bytes_by_class.get(edge_class, 0) + size
        self.messages_by_class[edge_class] = self.messages_by_class.get(edge_class, 0) + 1

    def bytes_for(self, edge_class: EdgeClass) -> int:
        return self.bytes_by_class.get(edge_class, 0)

    def messages_for(self, edge_class: EdgeClass) -> int:
        return self.messages_by_class.get(edge_class, 0)

    def mean_bytes_per_message(self, edge_class: EdgeClass) -> float:
        count = self.messages_by_class.get(edge_class, 0)
        return self.bytes_by_class.get(edge_class, 0) / count if count else 0.0

    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    def reset(self) -> None:
        self.bytes_by_class.clear()
        self.messages_by_class.clear()


class Channel:
    """Delivers :class:`DataMessage`s, counting traffic and applying attacks."""

    def __init__(self) -> None:
        self.counters = TrafficCounters()
        self._interceptors: list[Interceptor] = []

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Attach an adversary/fault model; order of attachment = order applied."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    def clear_interceptors(self) -> None:
        self._interceptors.clear()

    def transmit(self, message: DataMessage, edge_class: EdgeClass) -> DataMessage | None:
        """Send *message* over an *edge_class* link.

        Traffic is accounted for the legitimate transmission (the sender
        spent that energy regardless of what the adversary later does).
        Returns the possibly-modified message, or ``None`` if dropped.
        """
        self.counters.record(edge_class, message.wire_size())
        current: DataMessage | None = message
        for interceptor in self._interceptors:
            if current is None:
                return None
            current = interceptor(current, edge_class)
        return current
