"""The (insecure) wireless channel with adversary hooks.

Every PSR hop goes through a :class:`Channel`, which

* classifies the edge (source→aggregator, aggregator→aggregator,
  aggregator→querier) and accumulates byte counters per class — the
  exact quantities of the paper's Table V and communication analysis;
* when built with a :class:`~repro.wire.codec.PSRCodec`, **encodes the
  PSR into its real byte frame** for the hop: the frame travels through
  frame-level interceptors (bit flips, truncation, header forgery),
  then the receiver decodes it — a malformed frame is *dropped with a
  typed* :class:`~repro.errors.WireDecodeError`, exactly how a real
  receiver discards an unparseable packet;
* passes the (decoded) message through registered PSR-level
  *interceptors* in order.  An interceptor models an adversary (or a
  lossy link): it may return the message unchanged, a modified message,
  or ``None`` to drop it.

Traffic is accounted twice per transmission: ``bytes_by_class`` keeps
the paper's *analytic* payload count (``psr.wire_size()``, the Table V
quantity), while ``frame_bytes_by_class`` records the **measured**
``len(frame)``.  The channel cross-checks the two on every hop —
``len(frame) == HEADER_LEN + wire_size() + payload_overhead`` — so the
analytic model can never silently drift from the bytes actually sent.

The channel is where the threat model lives: the paper's adversary "may
… infiltrate the wireless channel", so attacks in :mod:`repro.attacks`
are implemented purely as interceptors — protocols cannot tell the
difference, exactly as in a real deployment.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, WireDecodeError, WireEncodeError
from repro.network.messages import DataMessage

if TYPE_CHECKING:
    from repro.wire.codec import PSRCodec

__all__ = [
    "EdgeClass",
    "Channel",
    "Interceptor",
    "FrameInterceptor",
    "RunListener",
    "TrafficCounters",
]


class EdgeClass(enum.Enum):
    """The three edge classes whose traffic the paper reports."""

    SOURCE_TO_AGGREGATOR = "S-A"
    AGGREGATOR_TO_AGGREGATOR = "A-A"
    AGGREGATOR_TO_QUERIER = "A-Q"


#: A PSR-level interceptor sees each decoded message and may modify or
#: drop it (the post-decode adversary surface).
Interceptor = Callable[[DataMessage, EdgeClass], DataMessage | None]

#: A frame-level interceptor sees the raw frame bytes in flight and may
#: return them unchanged, corrupted, or ``None`` to drop the frame.
FrameInterceptor = Callable[[bytes, EdgeClass], "bytes | None"]

#: A run listener is notified whenever :meth:`Channel.begin_run`
#: installs a fresh counter set — observers (tracers, metric adapters)
#: use it to scope their own state to the run boundary.
RunListener = Callable[["TrafficCounters"], None]


@dataclass
class TrafficCounters:
    """Bytes and message counts accumulated per edge class.

    ``bytes_by_class`` is the *analytic* payload accounting (the paper's
    model, what Table V reports); ``frame_bytes_by_class`` is the
    *measured* ``len(frame)`` when the channel runs a codec.  The
    difference per message is the fixed frame header plus any audited
    codec overhead — never an unexplained drift (the channel raises on
    mismatch).  ``decode_failures_by_class`` counts frames a receiver
    discarded because they no longer parsed.
    """

    bytes_by_class: dict[EdgeClass, int] = field(default_factory=dict)
    messages_by_class: dict[EdgeClass, int] = field(default_factory=dict)
    frame_bytes_by_class: dict[EdgeClass, int] = field(default_factory=dict)
    decode_failures_by_class: dict[EdgeClass, int] = field(default_factory=dict)

    def record(self, edge_class: EdgeClass, size: int) -> None:
        self.bytes_by_class[edge_class] = self.bytes_by_class.get(edge_class, 0) + size
        self.messages_by_class[edge_class] = self.messages_by_class.get(edge_class, 0) + 1

    def record_frame(self, edge_class: EdgeClass, size: int) -> None:
        self.frame_bytes_by_class[edge_class] = (
            self.frame_bytes_by_class.get(edge_class, 0) + size
        )

    def record_decode_failure(self, edge_class: EdgeClass) -> None:
        self.decode_failures_by_class[edge_class] = (
            self.decode_failures_by_class.get(edge_class, 0) + 1
        )

    def bytes_for(self, edge_class: EdgeClass) -> int:
        return self.bytes_by_class.get(edge_class, 0)

    def frame_bytes_for(self, edge_class: EdgeClass) -> int:
        return self.frame_bytes_by_class.get(edge_class, 0)

    def decode_failures_for(self, edge_class: EdgeClass) -> int:
        return self.decode_failures_by_class.get(edge_class, 0)

    def messages_for(self, edge_class: EdgeClass) -> int:
        return self.messages_by_class.get(edge_class, 0)

    def mean_bytes_per_message(self, edge_class: EdgeClass) -> float:
        count = self.messages_by_class.get(edge_class, 0)
        return self.bytes_by_class.get(edge_class, 0) / count if count else 0.0

    def mean_frame_bytes_per_message(self, edge_class: EdgeClass) -> float:
        count = self.messages_by_class.get(edge_class, 0)
        return self.frame_bytes_by_class.get(edge_class, 0) / count if count else 0.0

    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    def total_frame_bytes(self) -> int:
        return sum(self.frame_bytes_by_class.values())

    def reset(self) -> None:
        self.bytes_by_class.clear()
        self.messages_by_class.clear()
        self.frame_bytes_by_class.clear()
        self.decode_failures_by_class.clear()


class Channel:
    """Delivers :class:`DataMessage`s, counting traffic and applying attacks.

    With *codec* ``None`` the channel passes PSR objects through
    directly — the analytic mode third-party protocols without a wire
    format still use.  With a codec, every transmission is a real
    encode → (frame interceptors) → decode round trip.
    """

    def __init__(self, codec: "PSRCodec | None" = None) -> None:
        self.codec = codec
        self.counters = TrafficCounters()
        self._interceptors: list[Interceptor] = []
        self._frame_interceptors: list[FrameInterceptor] = []
        self._run_listeners: list[RunListener] = []

    def begin_run(self) -> TrafficCounters:
        """Install a fresh counter set for a new measured run.

        Simulator entry points call this so every run's ledger —
        including the measured ``frame_bytes_by_class`` — starts from
        zero instead of silently accumulating traffic from earlier runs
        on the same simulator.  The previous counters object is left
        untouched (a caller holding it keeps a consistent snapshot);
        reads through ``channel.counters`` see the new run.  Registered
        run listeners are notified with the fresh counters so observers
        (e.g. :class:`~repro.network.tracing.SimulationTracer`) can
        scope their own state to the same boundary.
        """
        self.counters = TrafficCounters()
        for listener in list(self._run_listeners):
            listener(self.counters)
        return self.counters

    # -- run-boundary listeners ------------------------------------------

    def add_run_listener(self, listener: RunListener) -> None:
        """Register *listener* to be called on every :meth:`begin_run`."""
        if listener not in self._run_listeners:
            self._run_listeners.append(listener)

    def remove_run_listener(self, listener: RunListener) -> None:
        if listener in self._run_listeners:
            self._run_listeners.remove(listener)

    # -- interceptor management -----------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Attach an adversary/fault model; order of attachment = order applied."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    def add_frame_interceptor(self, interceptor: FrameInterceptor) -> None:
        """Attach a byte-level adversary (requires a codec: bytes to attack)."""
        if self.codec is None:
            raise ConfigurationError(
                "frame interceptors need a codec-backed channel — without a codec "
                "there are no frame bytes to attack"
            )
        self._frame_interceptors.append(interceptor)

    def remove_frame_interceptor(self, interceptor: FrameInterceptor) -> None:
        self._frame_interceptors.remove(interceptor)

    def clear_interceptors(self) -> None:
        """Detach every adversary, at both the frame and the PSR layer."""
        self._interceptors.clear()
        self._frame_interceptors.clear()

    # -- transmission ----------------------------------------------------

    def transmit(
        self,
        message: DataMessage,
        edge_class: EdgeClass,
        *,
        frame: bytes | None = None,
    ) -> DataMessage | None:
        """Send *message* over an *edge_class* link.

        Traffic is accounted for the legitimate transmission (the sender
        spent that energy regardless of what the adversary later does).
        On a codec-backed channel the PSR is encoded to its byte frame
        (or *frame* is transmitted verbatim when given — the ARQ layer
        passes the cached first-attempt encoding so retransmissions are
        byte-identical), attacked at the byte level, and decoded at the
        receiver; a frame that fails to decode is dropped and counted.
        Returns the possibly-modified message, or ``None`` if dropped.
        """
        self.counters.record(edge_class, message.wire_size())
        if self.codec is None:
            if frame is not None:
                raise ConfigurationError(
                    "pre-encoded frame passed to a channel without a codec"
                )
            return self._apply_psr_interceptors(message, edge_class)

        if frame is None:
            frame = self.codec.encode(message.psr)
        # Measured-vs-analytic cross-check: the bytes on the radio must
        # equal the model's size plus the audited framing overhead.
        expected = self.codec.framed_size(message.psr)
        if len(frame) != expected:
            raise WireEncodeError(
                f"{len(frame)}-byte frame for a PSR whose analytic size announces "
                f"{expected} bytes — wire format and model have diverged"
            )
        self.counters.record_frame(edge_class, len(frame))

        attacked: bytes | None = frame
        for frame_interceptor in self._frame_interceptors:
            attacked = frame_interceptor(attacked, edge_class)
            if attacked is None:
                return None
        try:
            psr = self.codec.decode(attacked)
        except WireDecodeError:
            # A real receiver discards what it cannot parse; the typed
            # error family is the *only* thing a malformed frame may
            # raise (fuzzed in tests/wire/test_fuzz.py).
            self.counters.record_decode_failure(edge_class)
            return None
        delivered = DataMessage(
            sender=message.sender,
            receiver=message.receiver,
            epoch=psr.epoch,
            psr=psr,
        )
        return self._apply_psr_interceptors(delivered, edge_class)

    def _apply_psr_interceptors(
        self, message: DataMessage, edge_class: EdgeClass
    ) -> DataMessage | None:
        current: DataMessage | None = message
        for interceptor in self._interceptors:
            if current is None:
                return None
            current = interceptor(current, edge_class)
        return current
