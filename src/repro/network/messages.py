"""Wire messages exchanged in the simulated network.

Two message kinds exist:

* :class:`DataMessage` — a PSR travelling up the aggregation tree
  during an epoch.  Its accounted size is the PSR payload size — the
  quantity the paper's Table V reports (it deliberately excludes
  MAC-layer headers, which are identical across schemes).  On a
  codec-backed :class:`~repro.network.channel.Channel` the PSR does not
  travel as an object: it is encoded into a real byte frame
  (:mod:`repro.wire`) for the hop and decoded at the receiver, with the
  measured ``len(frame)`` accounted separately from this analytic size.
* :class:`BroadcastPacket` — a μTesla-authenticated packet travelling
  down the tree during query dissemination (setup phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.base import PartialStateRecord

__all__ = ["DataMessage", "BroadcastPacket"]


@dataclass
class DataMessage:
    """A PSR in flight from *sender* to *receiver* at *epoch*."""

    sender: int
    receiver: int
    epoch: int
    psr: PartialStateRecord

    def wire_size(self) -> int:
        """Payload bytes on the radio — the Table V quantity."""
        return self.psr.wire_size()


@dataclass
class BroadcastPacket:
    """One μTesla packet: payload + MAC now, key disclosed later.

    ``disclosed_key`` is ``None`` while the packet is in its silence
    window and is filled in by the broadcaster's later disclosure
    packet; receivers buffer the packet until then.
    """

    interval: int
    payload: bytes
    mac: bytes
    disclosed_key: bytes | None = None
    #: Free-form metadata (e.g. the query spec carried by the packet).
    headers: dict[str, object] = field(default_factory=dict)

    def wire_size(self) -> int:
        size = len(self.payload) + len(self.mac) + 4  # 4-byte interval index
        if self.disclosed_key is not None:
            size += len(self.disclosed_key)
        return size
