"""Radio energy accounting (extension).

The paper's motivation for in-network aggregation is battery life —
"[a sensor's] lifespan is mainly impacted by data transmission"
(Section I) — but it reports only byte counts.  This module adds the
standard *first-order radio model* (Heinzelman et al., HICSS 2000) so
experiments can also report per-node and network-wide energy, and the
examples can demonstrate the naive-collection vs in-network-aggregation
gap the introduction argues about:

* transmit ``k`` bits over distance ``d``:
  ``E_tx = E_elec*k + eps_amp*k*d^2``
* receive ``k`` bits: ``E_rx = E_elec*k``

Defaults: ``E_elec = 50 nJ/bit``, ``eps_amp = 100 pJ/bit/m²``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["EnergyModel", "FirstOrderRadioModel", "EnergyLedger"]


class EnergyModel(ABC):
    """Per-transmission/reception energy cost in joules."""

    @abstractmethod
    def transmit_energy(self, size_bytes: int, distance_m: float) -> float:
        """Energy to transmit *size_bytes* over *distance_m* meters."""

    @abstractmethod
    def receive_energy(self, size_bytes: int) -> float:
        """Energy to receive *size_bytes*."""


@dataclass(frozen=True)
class FirstOrderRadioModel(EnergyModel):
    """The first-order radio model with configurable constants."""

    electronics_j_per_bit: float = 50e-9
    amplifier_j_per_bit_m2: float = 100e-12

    def __post_init__(self) -> None:
        if self.electronics_j_per_bit < 0 or self.amplifier_j_per_bit_m2 < 0:
            raise ParameterError("energy constants must be non-negative")

    def transmit_energy(self, size_bytes: int, distance_m: float) -> float:
        bits = size_bytes * 8
        return self.electronics_j_per_bit * bits + self.amplifier_j_per_bit_m2 * bits * distance_m**2

    def receive_energy(self, size_bytes: int) -> float:
        return self.electronics_j_per_bit * size_bytes * 8


@dataclass
class EnergyLedger:
    """Accumulated radio energy per node (joules)."""

    model: EnergyModel
    spent_by_node: dict[int, float] = field(default_factory=dict)

    def on_transmit(self, node_id: int, size_bytes: int, distance_m: float) -> None:
        cost = self.model.transmit_energy(size_bytes, distance_m)
        self.spent_by_node[node_id] = self.spent_by_node.get(node_id, 0.0) + cost

    def on_receive(self, node_id: int, size_bytes: int) -> None:
        cost = self.model.receive_energy(size_bytes)
        self.spent_by_node[node_id] = self.spent_by_node.get(node_id, 0.0) + cost

    def spent(self, node_id: int) -> float:
        return self.spent_by_node.get(node_id, 0.0)

    def total(self) -> float:
        return sum(self.spent_by_node.values())

    def hottest_node(self) -> tuple[int, float]:
        """The node spending the most energy — the first to die.

        Network lifetime under the common "first node death" definition
        is inversely proportional to this node's per-epoch spend.
        """
        if not self.spent_by_node:
            return (-1, 0.0)
        node_id = max(self.spent_by_node, key=lambda nid: self.spent_by_node[nid])
        return node_id, self.spent_by_node[node_id]
