"""Epoch-driven simulation of the push-based aggregation process.

Each epoch (paper Section III-B):

1. every non-failed source draws its reading from the workload and runs
   the protocol's **initialization** phase, transmitting its PSR to its
   parent over the channel (where adversaries may act);
2. aggregators run the **merging** phase bottom-up, forwarding a single
   PSR toward the sink;
3. the querier runs the **evaluation** phase on the PSR received from
   the sink; security exceptions are recorded, not swallowed silently.

The simulator charges wall-clock time to each role around the exact
phase calls, accumulates primitive-operation counts, traffic per edge
class and (optionally) radio energy, and reports everything as
:class:`~repro.network.metrics.RunMetrics`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import SecurityError, SimulationError
from repro.network.channel import Channel, EdgeClass
from repro.network.energy import EnergyLedger, EnergyModel
from repro.network.messages import DataMessage
from repro.network.metrics import EpochMetrics, RunMetrics
from repro.network.topology import AggregationTree
from repro.protocols.base import (
    EvaluationResult,
    OpCounter,
    PartialStateRecord,
    QuerierRole,
    SecureAggregationProtocol,
)
from repro.utils.validation import check_positive_int

__all__ = ["SimulationConfig", "NetworkSimulator", "QUERIER_NODE_ID", "naive_collection_traffic"]

#: Sentinel node id for the querier (it is not part of the sensor tree).
QUERIER_NODE_ID = -1

#: A workload maps (source_id, epoch) to the source's integer reading.
Workload = Callable[[int, int], int]


@dataclass
class SimulationConfig:
    """Knobs for a simulation run."""

    #: Number of epochs to execute (paper: 20).
    num_epochs: int = 20
    #: First epoch index; epochs are ``start_epoch … start_epoch+num-1``.
    #: Starts at 1 because epoch 0 is reserved for setup/broadcast tests.
    start_epoch: int = 1
    #: Attach an energy model to account radio energy per node.
    energy_model: EnergyModel | None = None
    #: When False, querier evaluation is skipped (pure network runs).
    evaluate: bool = True
    #: Source ids that have permanently failed (reported to the querier).
    failed_sources: frozenset[int] = field(default_factory=frozenset)


class NetworkSimulator:
    """Binds a protocol, a topology and a workload into a runnable system."""

    def __init__(
        self,
        protocol: SecureAggregationProtocol,
        tree: AggregationTree,
        workload: Workload,
        config: SimulationConfig | None = None,
    ) -> None:
        if tree.num_sources != protocol.num_sources:
            raise SimulationError(
                f"topology has {tree.num_sources} sources but protocol was set up "
                f"for {protocol.num_sources}"
            )
        self.protocol = protocol
        self.tree = tree
        self.workload = workload
        self.config = config or SimulationConfig()
        # Codec-backed channel: every hop transmits the PSR's real byte
        # frame (encode → adversary → decode), with measured frame bytes
        # cross-checked against the analytic wire_size() per message.
        self.channel = Channel(codec=protocol.wire_codec())

        # Role instantiation — the protocol's setup phase already ran in
        # its constructor; here each party receives its role object.
        self.source_ops = OpCounter()
        self.aggregator_ops = OpCounter()
        self.querier_ops = OpCounter()
        self._sources = {
            sid: protocol.create_source(sid, ops=self.source_ops) for sid in tree.source_ids
        }
        self._aggregators = {
            aid: protocol.create_aggregator(ops=self.aggregator_ops)
            for aid in tree.aggregator_ids
        }
        self._querier = protocol.create_querier(ops=self.querier_ops)
        self._merge_schedule = tree.bottom_up_aggregators()
        self._energy = (
            EnergyLedger(self.config.energy_model) if self.config.energy_model else None
        )
        #: Per-epoch dynamic failures injected by tests/attacks.
        self._epoch_failures: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Failure injection (paper Section IV-B, "Discussion")
    # ------------------------------------------------------------------

    def fail_source_at(self, source_id: int, epochs: Iterable[int]) -> None:
        """Mark *source_id* as failed (and reported) for the given epochs."""
        if source_id not in self._sources:
            raise SimulationError(f"unknown source {source_id}")
        for epoch in epochs:
            self._epoch_failures.setdefault(epoch, set()).add(source_id)

    def _reporting_sources(self, epoch: int) -> list[int]:
        failed = set(self.config.failed_sources) | self._epoch_failures.get(epoch, set())
        return [sid for sid in self.tree.source_ids if sid not in failed]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, num_epochs: int | None = None) -> RunMetrics:
        """Execute the configured number of epochs and return the metrics."""
        epochs = num_epochs if num_epochs is not None else self.config.num_epochs
        check_positive_int("num_epochs", epochs)
        self.channel.begin_run()
        metrics = RunMetrics(protocol=self.protocol.name, num_sources=self.tree.num_sources)
        for offset in range(epochs):
            epoch = self.config.start_epoch + offset
            metrics.epochs.append(self._execute_epoch(epoch))
        metrics.traffic = self.channel.counters
        metrics.source_ops = self.source_ops
        metrics.aggregator_ops = self.aggregator_ops
        metrics.querier_ops = self.querier_ops
        if self._energy is not None:
            metrics.energy_by_node = dict(self._energy.spent_by_node)
        return metrics

    def run_batched(
        self,
        num_epochs: int | None = None,
        *,
        window: int = 8,
        max_workers: int | None = None,
        cache_capacity: int | None = None,
    ) -> RunMetrics:
        """Execute epochs in windows through the batch entry points.

        Equivalent to :meth:`run` — ``tests/differential`` asserts
        bit-identical ciphertexts, results, operation counts and
        accept/reject verdicts — but restructured for throughput:

        * every reporting source produces a whole window of PSRs in one
          ``encrypt_many`` call (optionally fanned out across a thread
          pool with *max_workers*);
        * each aggregator drains its window of inboxes through one
          ``combine_many`` call;
        * the querier prefetches the window's key schedules into a
          :class:`~repro.crypto.keycache.KeyScheduleCache` (when the
          protocol provides ``create_key_cache``) and evaluates via
          ``evaluate_many``.

        Ordering contract for interceptors: source→aggregator messages
        are delivered epoch-major in source order (exactly the
        sequential order); aggregator output messages are delivered
        per aggregator in ascending epoch order, which preserves the
        sequential relative order on every edge an interceptor can key
        on epoch-wise (in particular aggregator→querier, the replay
        surface).  Wall-clock attribution within a batch call is split
        evenly across the window (operation counts stay exact).

        Workloads must be pure functions of ``(source_id, epoch)`` —
        every bundled workload is — because readings are drawn in
        source-major instead of epoch-major order.
        """
        epochs = num_epochs if num_epochs is not None else self.config.num_epochs
        check_positive_int("num_epochs", epochs)
        check_positive_int("window", window)
        if max_workers is not None:
            check_positive_int("max_workers", max_workers)
        self.channel.begin_run()

        querier: QuerierRole = self._querier
        cache = None
        make_cache = getattr(self.protocol, "create_key_cache", None)
        if self.config.evaluate and make_cache is not None:
            capacity = cache_capacity if cache_capacity is not None else max(2 * window, 16)
            # A cache smaller than the window would evict prefetched
            # epochs before evaluation reads them — correct results but
            # twice the HMAC work, breaking op-count parity with the
            # sequential path.  Never run starved.
            capacity = max(capacity, window)
            cache = make_cache(capacity=capacity)
            querier = self.protocol.create_querier(ops=self.querier_ops, key_cache=cache)

        metrics = RunMetrics(protocol=self.protocol.name, num_sources=self.tree.num_sources)
        all_epochs = [self.config.start_epoch + offset for offset in range(epochs)]
        for start in range(0, len(all_epochs), window):
            metrics.epochs.extend(
                self._run_window(all_epochs[start : start + window], querier, cache, max_workers)
            )
        metrics.traffic = self.channel.counters
        metrics.source_ops = self.source_ops
        metrics.aggregator_ops = self.aggregator_ops
        metrics.querier_ops = self.querier_ops
        if self._energy is not None:
            metrics.energy_by_node = dict(self._energy.spent_by_node)
        return metrics

    def _run_window(
        self,
        wepochs: list[int],
        querier: QuerierRole,
        cache,
        max_workers: int | None,
    ) -> list[EpochMetrics]:
        """One window of the batched pipeline; see :meth:`run_batched`."""
        tree = self.tree
        reporting = {epoch: self._reporting_sources(epoch) for epoch in wepochs}
        reporting_sets = {epoch: set(ids) for epoch, ids in reporting.items()}
        ems = {epoch: EpochMetrics(epoch=epoch) for epoch in wepochs}
        inboxes: dict[int, dict[int, list[PartialStateRecord]]] = {e: {} for e in wepochs}

        # --- Initialization phase, batched per source -------------------
        items_by_source = {}
        for sid in tree.source_ids:
            items = [
                (epoch, self.workload(sid, epoch))
                for epoch in wepochs
                if sid in reporting_sets[epoch]
            ]
            if items:
                items_by_source[sid] = items

        psr_by_source: dict[int, dict[int, PartialStateRecord]] = {}

        def record_psrs(sid: int, psrs, elapsed: float) -> None:
            items = items_by_source[sid]
            psr_by_source[sid] = {epoch: psr for (epoch, _), psr in zip(items, psrs)}
            for epoch, _ in items:
                ems[epoch].source_seconds_total += elapsed / len(items)

        if max_workers:
            # Pooled sources get fresh role objects with private op
            # counters (the shared ledger is not thread-safe); counters
            # are merged afterwards, so totals match the serial path.
            def job(sid: int):
                local_ops = OpCounter()
                role = self.protocol.create_source(sid, ops=local_ops)
                start = time.perf_counter()
                psrs = role.encrypt_many(items_by_source[sid])
                return psrs, time.perf_counter() - start, local_ops

            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = {sid: pool.submit(job, sid) for sid in items_by_source}
            for sid in items_by_source:
                psrs, elapsed, local_ops = futures[sid].result()
                self.source_ops.merge(local_ops)
                record_psrs(sid, psrs, elapsed)
        else:
            for sid in items_by_source:
                start = time.perf_counter()
                psrs = self._sources[sid].encrypt_many(items_by_source[sid])
                record_psrs(sid, psrs, time.perf_counter() - start)

        # Deliver in the sequential order (epoch-major, source order).
        for epoch in wepochs:
            for sid in reporting[epoch]:
                parent = tree.parent(sid)
                if parent is None:
                    raise SimulationError(f"source {sid} has no parent aggregator")
                self._deliver(DataMessage(sid, parent, epoch, psr_by_source[sid][epoch]), inboxes[epoch])
                ems[epoch].sources_reporting += 1

        # --- Merging phase, batched per aggregator ----------------------
        # Bottom-up order guarantees every child (for every epoch of the
        # window) has delivered before an aggregator's batch is drained.
        final_psrs: dict[int, PartialStateRecord | None] = {epoch: None for epoch in wepochs}
        sent_to_querier: set[int] = set()
        for aid in self._merge_schedule:
            batch = []
            for epoch in wepochs:
                received = inboxes[epoch].pop(aid, [])
                if received:
                    batch.append((epoch, received))
            if not batch:
                continue  # whole subtree failed/suppressed this window
            aggregator = self._aggregators[aid]
            start = time.perf_counter()
            merged_batch = aggregator.combine_many(batch)
            per_item = (time.perf_counter() - start) / len(batch)
            parent = tree.parent(aid)
            receiver = QUERIER_NODE_ID if parent is None else parent
            for (epoch, _), merged in zip(batch, merged_batch):
                ems[epoch].aggregator_seconds_total += per_item
                ems[epoch].aggregator_merges += 1
                if receiver == QUERIER_NODE_ID:
                    start = time.perf_counter()
                    merged = aggregator.finalize_for_querier(merged)
                    ems[epoch].aggregator_seconds_total += time.perf_counter() - start
                    sent_to_querier.add(epoch)
                    final_psrs[epoch] = self._deliver_to_querier(
                        DataMessage(aid, receiver, epoch, merged)
                    )
                else:
                    self._deliver(DataMessage(aid, receiver, epoch, merged), inboxes[epoch])

        # --- Evaluation phase, batched over the window -------------------
        if self.config.evaluate:
            eval_items = []
            for epoch in wepochs:
                if final_psrs[epoch] is None:
                    # The paper treats a missing report as a trivially
                    # detected DoS.  A final PSR that was *transmitted*
                    # and then swallowed on the last hop is recorded
                    # distinctly from one that was never produced.
                    ems[epoch].security_failure = (
                        "MessageLost" if epoch in sent_to_querier else "NoResult"
                    )
                    continue
                all_reported = len(reporting[epoch]) == tree.num_sources
                eval_items.append(
                    (epoch, final_psrs[epoch], None if all_reported else reporting[epoch])
                )
            if eval_items and cache is not None:
                # Warm exactly what evaluation will touch, charging the
                # querier ledger for the derivations actually performed —
                # totals match the sequential path HMAC for HMAC.
                for epoch, _, contributors in eval_items:
                    start = time.perf_counter()
                    cache.prefetch([epoch], source_ids=contributors, ops=self.querier_ops)
                    ems[epoch].querier_seconds += time.perf_counter() - start
            if eval_items:
                start = time.perf_counter()
                outcomes = querier.evaluate_many(eval_items)
                per_item = (time.perf_counter() - start) / len(eval_items)
                for (epoch, _, _), outcome in zip(eval_items, outcomes):
                    ems[epoch].querier_seconds += per_item
                    if isinstance(outcome, EvaluationResult):
                        ems[epoch].result = outcome
                    else:
                        ems[epoch].security_failure = type(outcome).__name__
        return [ems[epoch] for epoch in wepochs]

    def run_epoch(self, epoch: int) -> EpochMetrics:
        """Execute one epoch as its own measured run (fresh traffic counters).

        Multi-epoch entry points (:meth:`run`, :meth:`run_batched`)
        accumulate one ledger across their epochs; a bare ``run_epoch``
        is a run of its own and must not inherit frame bytes from
        whatever ran on this simulator before.
        """
        self.channel.begin_run()
        return self._execute_epoch(epoch)

    def _execute_epoch(self, epoch: int) -> EpochMetrics:
        """One epoch's work, accounted into the channel's current counters."""
        em = EpochMetrics(epoch=epoch)
        reporting = self._reporting_sources(epoch)
        all_reported = len(reporting) == self.tree.num_sources
        inboxes: dict[int, list[PartialStateRecord]] = {}

        # --- Initialization phase at every reporting source ------------
        for sid in reporting:
            value = self.workload(sid, epoch)
            start = time.perf_counter()
            psr = self._sources[sid].initialize(epoch, value)
            em.source_seconds_total += time.perf_counter() - start
            em.sources_reporting += 1
            parent = self.tree.parent(sid)
            if parent is None:
                raise SimulationError(f"source {sid} has no parent aggregator")
            self._deliver(DataMessage(sid, parent, epoch, psr), inboxes)

        # --- Merging phase, bottom-up -----------------------------------
        final_psr: PartialStateRecord | None = None
        sent_to_querier = False
        for aid in self._merge_schedule:
            received = inboxes.pop(aid, [])
            if not received:
                continue  # whole subtree failed/suppressed this epoch
            start = time.perf_counter()
            merged = self._aggregators[aid].merge(epoch, received)
            em.aggregator_seconds_total += time.perf_counter() - start
            em.aggregator_merges += 1
            parent = self.tree.parent(aid)
            receiver = QUERIER_NODE_ID if parent is None else parent
            if receiver == QUERIER_NODE_ID:
                start = time.perf_counter()
                merged = self._aggregators[aid].finalize_for_querier(merged)
                em.aggregator_seconds_total += time.perf_counter() - start
                message = DataMessage(aid, receiver, epoch, merged)
                sent_to_querier = True
                final_psr = self._deliver_to_querier(message)
            else:
                self._deliver(DataMessage(aid, receiver, epoch, merged), inboxes)

        # --- Evaluation phase at the querier -----------------------------
        if self.config.evaluate:
            if final_psr is None:
                # The paper treats a missing report as a trivially detected
                # DoS.  A final PSR dropped on its last hop (the channel
                # transmitted it, an interceptor returned None) is a
                # distinct event from no PSR ever being produced.
                em.security_failure = "MessageLost" if sent_to_querier else "NoResult"
            else:
                try:
                    start = time.perf_counter()
                    em.result = self._querier.evaluate(
                        epoch,
                        final_psr,
                        reporting_sources=None if all_reported else reporting,
                    )
                    em.querier_seconds = time.perf_counter() - start
                except SecurityError as exc:
                    em.querier_seconds = time.perf_counter() - start
                    em.security_failure = type(exc).__name__
        return em

    # ------------------------------------------------------------------
    # Delivery helpers
    # ------------------------------------------------------------------

    def _edge_class(self, message: DataMessage) -> EdgeClass:
        if message.receiver == QUERIER_NODE_ID:
            return EdgeClass.AGGREGATOR_TO_QUERIER
        if self.tree.node(message.sender).is_source:
            return EdgeClass.SOURCE_TO_AGGREGATOR
        return EdgeClass.AGGREGATOR_TO_AGGREGATOR

    def _deliver(
        self, message: DataMessage, inboxes: dict[int, list[PartialStateRecord]]
    ) -> None:
        edge = self._edge_class(message)
        self._account_energy(message, edge)
        delivered = self.channel.transmit(message, edge)
        if delivered is not None:
            inboxes.setdefault(delivered.receiver, []).append(delivered.psr)

    def _deliver_to_querier(self, message: DataMessage) -> PartialStateRecord | None:
        edge = self._edge_class(message)
        self._account_energy(message, edge)
        delivered = self.channel.transmit(message, edge)
        return delivered.psr if delivered is not None else None

    def _account_energy(self, message: DataMessage, edge: EdgeClass) -> None:
        if self._energy is None:
            return
        size = message.wire_size()
        sender_node = self.tree.node(message.sender)
        self._energy.on_transmit(message.sender, size, sender_node.link_distance_m)
        if message.receiver != QUERIER_NODE_ID:
            self._energy.on_receive(message.receiver, size)


def naive_collection_traffic(
    tree: AggregationTree,
    reading_bytes: int,
    *,
    energy_model: EnergyModel | None = None,
) -> tuple[dict[int, int], EnergyLedger | None]:
    """Traffic of the *naive* scheme the paper's introduction argues against.

    Without in-network aggregation every raw reading is relayed hop by
    hop to the sink, so a node forwards one reading per source in its
    subtree.  Returns per-node transmitted bytes for one epoch (and an
    energy ledger when a model is given) — used by the energy example to
    reproduce the "nodes closer to the sink die first" effect.
    """
    check_positive_int("reading_bytes", reading_bytes)
    tx_bytes: dict[int, int] = {}
    ledger = EnergyLedger(energy_model) if energy_model is not None else None
    for node in tree:
        if node.node_id == tree.root_id:
            descendants = tree.num_sources  # root forwards everything to the querier
        else:
            descendants = len(tree.leaves_under(node.node_id))
        size = descendants * reading_bytes
        tx_bytes[node.node_id] = size
        if ledger is not None:
            ledger.on_transmit(node.node_id, size, node.link_distance_m)
            received = size if node.is_source else size
            if not node.is_source:
                ledger.on_receive(node.node_id, received)
    return tx_bytes, ledger
