"""Structured event tracing for simulations (observability).

A :class:`SimulationTracer` attaches to a
:class:`~repro.network.simulator.NetworkSimulator`'s channel and records
every message hop as a structured event; the simulator's metrics say
*how much* happened, the trace says *what* happened, in order — the
difference between a dashboard and a debugger.  Traces serialize to
JSON-lines for offline analysis and diffing between runs.

Events carry message *metadata* only (sender, receiver, epoch, size,
PSR type), never key material, and ciphertext values only when
explicitly enabled — a trace file must be safe to share.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO

from repro.network.channel import Channel, EdgeClass, TrafficCounters
from repro.network.messages import DataMessage

__all__ = ["TraceEvent", "SimulationTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed message hop."""

    sequence: int
    epoch: int
    edge: str
    sender: int
    receiver: int
    psr_type: str
    wire_bytes: int
    ciphertext: int | None = None

    def to_json(self) -> str:
        payload = {
            "seq": self.sequence,
            "epoch": self.epoch,
            "edge": self.edge,
            "from": self.sender,
            "to": self.receiver,
            "psr": self.psr_type,
            "bytes": self.wire_bytes,
        }
        if self.ciphertext is not None:
            payload["ciphertext"] = str(self.ciphertext)  # big ints as strings
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        return cls(
            sequence=data["seq"],
            epoch=data["epoch"],
            edge=data["edge"],
            sender=data["from"],
            receiver=data["to"],
            psr_type=data["psr"],
            wire_bytes=data["bytes"],
            ciphertext=int(data["ciphertext"]) if "ciphertext" in data else None,
        )


@dataclass
class SimulationTracer:
    """Records every hop crossing a channel.

    Attach before running::

        tracer = SimulationTracer()
        tracer.attach(simulator.channel)
        simulator.run()
        tracer.write_jsonl(open("trace.jsonl", "w"))
    """

    include_ciphertexts: bool = False
    events: list[TraceEvent] = field(default_factory=list)
    _sequence: int = 0
    _channel: Channel | None = field(default=None, repr=False)

    def attach(self, channel: Channel) -> None:
        """Register as a (non-modifying) interceptor on *channel*.

        Idempotent: attaching twice to the same channel records each hop
        once, not twice.  Attaching to a different channel first detaches
        from the old one.  The tracer also registers a run listener so
        its events are scoped per run — a new
        :meth:`~repro.network.channel.Channel.begin_run` clears the event
        buffer and restarts the sequence, keeping one trace per run
        instead of silently mixing runs.
        """
        if self._channel is channel:
            return
        if self._channel is not None:
            self.detach()
        channel.add_interceptor(self._observe)
        channel.add_run_listener(self._on_begin_run)
        self._channel = channel

    def detach(self) -> None:
        """Unregister from the attached channel (no-op when detached)."""
        if self._channel is None:
            return
        self._channel.remove_interceptor(self._observe)
        self._channel.remove_run_listener(self._on_begin_run)
        self._channel = None

    def _on_begin_run(self, counters: TrafficCounters) -> None:
        self.events = []
        self._sequence = 0

    def _observe(self, message: DataMessage, edge: EdgeClass) -> DataMessage:
        ciphertext = None
        if self.include_ciphertexts:
            ciphertext = getattr(message.psr, "ciphertext", None)
        self.events.append(
            TraceEvent(
                sequence=self._sequence,
                epoch=message.epoch,
                edge=edge.value,
                sender=message.sender,
                receiver=message.receiver,
                psr_type=type(message.psr).__name__,
                wire_bytes=message.wire_size(),
                ciphertext=ciphertext,
            )
        )
        self._sequence += 1
        return message

    # ------------------------------------------------------------------
    # Queries over the trace
    # ------------------------------------------------------------------

    def epochs(self) -> list[int]:
        return sorted({e.epoch for e in self.events})

    def events_for_epoch(self, epoch: int) -> list[TraceEvent]:
        return [e for e in self.events if e.epoch == epoch]

    def hops_through(self, node_id: int) -> list[TraceEvent]:
        """Everything a given node sent or received — per-node debugging."""
        return [e for e in self.events if node_id in (e.sender, e.receiver)]

    def bytes_by_edge(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for e in self.events:
            totals[e.edge] = totals.get(e.edge, 0) + e.wire_bytes
        return totals

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write one JSON object per event; returns the event count."""
        for event in self.events:
            stream.write(event.to_json() + "\n")
        return len(self.events)

    @classmethod
    def read_jsonl(cls, stream: IO[str]) -> "SimulationTracer":
        tracer = cls()
        tracer.events = [TraceEvent.from_json(line) for line in stream if line.strip()]
        tracer._sequence = len(tracer.events)
        return tracer
