"""Common protocol abstractions shared by SIES and the baselines.

Every scheme (SIES, CMT, SECOA_S, …) is expressed as a
:class:`~repro.protocols.base.SecureAggregationProtocol` that
manufactures the three per-party roles of the paper's architecture
(Section III-A): *source* (initialization phase), *aggregator* (merging
phase) and *querier* (evaluation phase).  The network simulator is
written once against these interfaces, so protocols are interchangeable
in every experiment.
"""

from repro.protocols.base import (
    AggregatorRole,
    EvaluationResult,
    OpCounter,
    PartialStateRecord,
    QuerierRole,
    SecureAggregationProtocol,
    SourceRole,
)
from repro.protocols.registry import available_protocols, create_protocol, register_protocol

__all__ = [
    "PartialStateRecord",
    "EvaluationResult",
    "OpCounter",
    "SourceRole",
    "AggregatorRole",
    "QuerierRole",
    "SecureAggregationProtocol",
    "register_protocol",
    "create_protocol",
    "available_protocols",
]
