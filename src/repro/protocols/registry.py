"""Name-based protocol registry.

Experiments select protocols by name (``"sies"``, ``"cmt"``,
``"secoa_s"``), so sweep drivers stay declarative.  Protocol modules
register a factory at import time; :func:`create_protocol` imports the
built-ins lazily to avoid circular imports.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ConfigurationError
from repro.protocols.base import SecureAggregationProtocol

__all__ = [
    "register_protocol",
    "create_protocol",
    "available_protocols",
    "register_wire_protocol_id",
    "wire_protocol_id",
    "wire_protocol_name",
    "registered_wire_protocols",
]

_REGISTRY: dict[str, Callable[..., SecureAggregationProtocol]] = {}

#: Frame-header protocol ids (1 byte each; 0 is reserved/invalid).
#: Codec modules register here at import time so the id ↔ name mapping
#: lives next to the protocol-name registry and stays collision-checked.
_WIRE_IDS: dict[str, int] = {}


def register_protocol(name: str, factory: Callable[..., SecureAggregationProtocol]) -> None:
    """Register *factory* under *name* (idempotent re-registration allowed)."""
    _REGISTRY[name] = factory


def register_wire_protocol_id(name: str, protocol_id: int) -> int:
    """Claim frame-header id *protocol_id* for protocol *name*.

    Idempotent for the same (name, id) pair; a conflicting claim is a
    wiring bug and raises :class:`~repro.errors.ConfigurationError`.
    Returns the id so codec classes can assign it inline.
    """
    if not 1 <= protocol_id <= 0xFF:
        raise ConfigurationError(
            f"wire protocol id must be in [1, 255], got {protocol_id} for {name!r}"
        )
    existing = _WIRE_IDS.get(name)
    if existing is not None and existing != protocol_id:
        raise ConfigurationError(
            f"protocol {name!r} already registered with wire id {existing}, not {protocol_id}"
        )
    for other, oid in _WIRE_IDS.items():
        if oid == protocol_id and other != name:
            raise ConfigurationError(
                f"wire id {protocol_id} already belongs to {other!r}; cannot give it to {name!r}"
            )
    _WIRE_IDS[name] = protocol_id
    return protocol_id


def wire_protocol_id(name: str) -> int:
    """The frame-header id registered for protocol *name*."""
    _ensure_builtins_loaded()
    try:
        return _WIRE_IDS[name]
    except KeyError:
        raise ConfigurationError(
            f"no wire protocol id registered for {name!r}; "
            f"registered: {', '.join(sorted(_WIRE_IDS))}"
        ) from None


def wire_protocol_name(protocol_id: int) -> str:
    """The protocol name owning frame-header id *protocol_id*."""
    _ensure_builtins_loaded()
    for name, oid in _WIRE_IDS.items():
        if oid == protocol_id:
            return name
    raise ConfigurationError(f"no protocol registered for wire id {protocol_id}")


def registered_wire_protocols() -> dict[str, int]:
    """Snapshot of the name → frame-header id table."""
    _ensure_builtins_loaded()
    return dict(sorted(_WIRE_IDS.items()))


def _ensure_builtins_loaded() -> None:
    # Importing these modules triggers their register_protocol calls;
    # the codec module registers the frame-header protocol ids.
    import repro.baselines.cmt  # noqa: F401
    import repro.baselines.secoa.secoa_sum  # noqa: F401
    import repro.cluster.envelope  # noqa: F401
    import repro.core.protocol  # noqa: F401
    import repro.wire.codecs  # noqa: F401


def available_protocols() -> tuple[str, ...]:
    """Names accepted by :func:`create_protocol`."""
    _ensure_builtins_loaded()
    return tuple(sorted(_REGISTRY))


def create_protocol(name: str, num_sources: int, **kwargs: Any) -> SecureAggregationProtocol:
    """Instantiate the protocol registered under *name*.

    Keyword arguments are forwarded to the protocol constructor (each
    protocol documents its own: e.g. SIES takes ``value_bytes``, SECOA_S
    takes ``num_sketches``).
    """
    _ensure_builtins_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(num_sources, **kwargs)
