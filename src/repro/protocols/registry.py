"""Name-based protocol registry.

Experiments select protocols by name (``"sies"``, ``"cmt"``,
``"secoa_s"``), so sweep drivers stay declarative.  Protocol modules
register a factory at import time; :func:`create_protocol` imports the
built-ins lazily to avoid circular imports.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ConfigurationError
from repro.protocols.base import SecureAggregationProtocol

__all__ = ["register_protocol", "create_protocol", "available_protocols"]

_REGISTRY: dict[str, Callable[..., SecureAggregationProtocol]] = {}


def register_protocol(name: str, factory: Callable[..., SecureAggregationProtocol]) -> None:
    """Register *factory* under *name* (idempotent re-registration allowed)."""
    _REGISTRY[name] = factory


def _ensure_builtins_loaded() -> None:
    # Importing these modules triggers their register_protocol calls.
    import repro.baselines.cmt  # noqa: F401
    import repro.baselines.secoa.secoa_sum  # noqa: F401
    import repro.core.protocol  # noqa: F401


def available_protocols() -> tuple[str, ...]:
    """Names accepted by :func:`create_protocol`."""
    _ensure_builtins_loaded()
    return tuple(sorted(_REGISTRY))


def create_protocol(name: str, num_sources: int, **kwargs: Any) -> SecureAggregationProtocol:
    """Instantiate the protocol registered under *name*.

    Keyword arguments are forwarded to the protocol constructor (each
    protocol documents its own: e.g. SIES takes ``value_bytes``, SECOA_S
    takes ``num_sketches``).
    """
    _ensure_builtins_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(num_sources, **kwargs)
