"""Abstract interfaces for secure in-network aggregation protocols.

The paper's aggregation process (Section III-A) has three phases:

* **Initialization** ``I`` at each source: raw value → partial state
  record (PSR);
* **Merging** ``M`` at each aggregator: children's PSRs → one PSR;
* **Evaluation** ``E`` at the querier: final PSR → verified result.

This module fixes those phase signatures as abstract roles plus a
factory (:class:`SecureAggregationProtocol`) that performs the setup
phase (key generation and distribution) and hands out role objects.
It also defines :class:`OpCounter`, the operation-count ledger that
backs the analytic cost models of Section V.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParameterError, SecurityError

__all__ = [
    "PartialStateRecord",
    "EvaluationResult",
    "OpCounter",
    "SourceRole",
    "AggregatorRole",
    "QuerierRole",
    "SecureAggregationProtocol",
]


class PartialStateRecord(ABC):
    """A protocol-specific PSR.

    Concrete PSRs must also expose an ``epoch`` attribute: it models the
    plaintext epoch header a real packet would carry (and that the wire
    codec writes into the frame header).  Being a header it is
    *attacker-controlled* — protocols must not trust it for security
    (SIES derives freshness from the shares instead, Theorem 4).

    On the wire a PSR travels as a byte frame produced by the protocol's
    :class:`repro.wire.codec.PSRCodec` (see :meth:`SecureAggregationProtocol.
    wire_codec`); ``wire_size()`` remains the *analytic* payload size the
    paper's communication model counts, cross-checked against the real
    encoding on every transmission.
    """

    #: Epoch header (set by subclasses; plaintext metadata, untrusted).
    epoch: int

    @abstractmethod
    def wire_size(self) -> int:
        """Analytic serialized size in bytes — drives Table V / communication cost."""


@dataclass
class EvaluationResult:
    """Outcome of the querier's evaluation phase.

    Attributes
    ----------
    value:
        The (integer-domain) aggregate reported to the application.
    epoch:
        Epoch the result belongs to.
    verified:
        True when the protocol's integrity check passed.  Protocols
        without integrity (CMT) always report False.
    exact:
        True for exact schemes (SIES, CMT); False for sketch-based
        approximations (SECOA_S), whose ``value`` is an estimate.
    extras:
        Protocol-specific diagnostics (e.g. SECOA_S's mean sketch value).
    """

    value: int
    epoch: int
    verified: bool
    exact: bool
    extras: dict[str, Any] = field(default_factory=dict)


# Operation names recognized by the cost models (Section V / Table II).
OP_NAMES = (
    "hm1",        # HMAC-SHA1 evaluation (C_HM1)
    "hm256",      # HMAC-SHA256 evaluation (C_HM256)
    "add20",      # 20-byte modular addition (C_A20)
    "add32",      # 32-byte modular addition (C_A32)
    "mul32",      # 32-byte modular multiplication (C_M32)
    "mul128",     # 128-byte modular multiplication (C_M128)
    "inv32",      # 32-byte modular inverse (C_MI32)
    "rsa",        # RSA encryption (C_RSA)
    "sketch",     # one sketch insertion (C_sk)
)


@dataclass
class OpCounter:
    """Ledger of primitive-operation counts for one party's work.

    Role implementations increment this as they compute, so every
    experiment can report a *modeled* cost (counts × measured Table II
    constants) next to the measured wall-clock time, mirroring how the
    paper validates its cost models.
    """

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, op: str, count: int = 1) -> None:
        if op not in OP_NAMES:
            raise ParameterError(f"unknown operation {op!r}; expected one of {OP_NAMES}")
        if count < 0:
            raise ParameterError(f"operation count must be non-negative, got {count}")
        self.counts[op] = self.counts.get(op, 0) + count

    def get(self, op: str) -> int:
        return self.counts.get(op, 0)

    def merge(self, other: "OpCounter") -> None:
        for op, count in other.counts.items():
            self.counts[op] = self.counts.get(op, 0) + count

    def reset(self) -> None:
        self.counts.clear()

    def copy(self) -> "OpCounter":
        return OpCounter(counts=dict(self.counts))


class SourceRole(ABC):
    """Initialization phase ``I`` — runs on a source sensor."""

    #: Identifier of the source within the protocol instance.
    source_id: int

    @abstractmethod
    def initialize(self, epoch: int, value: int) -> PartialStateRecord:
        """Produce the PSR for this source's *value* at *epoch*."""

    def encrypt_many(self, items: Sequence[tuple[int, int]]) -> list[PartialStateRecord]:
        """Batch entry point: one PSR per ``(epoch, value)`` pair.

        Semantically identical to calling :meth:`initialize` per item
        (the differential harness asserts this); protocols override it
        when per-batch amortization is possible.
        """
        return [self.initialize(epoch, value) for epoch, value in items]


class AggregatorRole(ABC):
    """Merging phase ``M`` — runs on an aggregator sensor."""

    @abstractmethod
    def merge(self, epoch: int, psrs: Sequence[PartialStateRecord]) -> PartialStateRecord:
        """Fuse the children's PSRs into a single PSR."""

    def combine_many(
        self, items: Sequence[tuple[int, Sequence[PartialStateRecord]]]
    ) -> list[PartialStateRecord]:
        """Batch entry point: one merged PSR per ``(epoch, psrs)`` group.

        Groups are independent (one inbox per epoch), so this is
        semantically identical to calling :meth:`merge` per group.
        """
        return [self.merge(epoch, psrs) for epoch, psrs in items]

    def finalize_for_querier(self, psr: PartialStateRecord) -> PartialStateRecord:
        """Extra work the *sink* performs before the hop to the querier.

        Identity for most schemes; SECOA's root aggregator folds SEALs
        that sit at the same chain position here, shrinking the A–Q
        message (paper Section II-D and Eq. 11).
        """
        return psr


class QuerierRole(ABC):
    """Evaluation phase ``E`` — runs at the querier."""

    @abstractmethod
    def evaluate(
        self,
        epoch: int,
        psr: PartialStateRecord,
        *,
        reporting_sources: Sequence[int] | None = None,
    ) -> EvaluationResult:
        """Extract and verify the aggregate from the final PSR.

        ``reporting_sources`` lists the source ids that contributed this
        epoch (paper Section IV-B, node failures); ``None`` means all.
        Raises a :class:`repro.errors.SecurityError` subclass when a
        protocol with integrity detects tampering or replay.
        """

    def evaluate_many(
        self,
        items: Sequence[tuple[int, PartialStateRecord, Sequence[int] | None]],
    ) -> list["EvaluationResult | SecurityError"]:
        """Batch entry point over ``(epoch, psr, reporting_sources)`` triples.

        Returns one outcome per item, aligned with the input: the
        :class:`EvaluationResult` on acceptance, or the *captured*
        :class:`~repro.errors.SecurityError` on a detected violation —
        a rejected epoch must not abort the rest of the window.
        Non-security errors (caller mistakes) propagate immediately.
        """
        outcomes: list[EvaluationResult | SecurityError] = []
        for epoch, psr, reporting_sources in items:
            try:
                outcomes.append(self.evaluate(epoch, psr, reporting_sources=reporting_sources))
            except SecurityError as exc:
                outcomes.append(exc)
        return outcomes


class SecureAggregationProtocol(ABC):
    """Factory for the three roles plus the setup phase.

    A protocol instance owns all key material (it plays the querier's
    role from the setup phase of the paper: generating keys and manually
    registering them to the parties).  Role objects hold only the
    material their party would legitimately possess, which the attack
    scenarios rely on.
    """

    #: Short machine name, e.g. ``"sies"``, ``"cmt"``, ``"secoa_s"``.
    name: str = "abstract"
    #: Whether the scheme answers SUM exactly.
    exact: bool = True
    #: Security properties, for reporting.
    provides_confidentiality: bool = False
    provides_integrity: bool = False

    def __init__(self, num_sources: int) -> None:
        if num_sources <= 0:
            raise ParameterError(f"num_sources must be positive, got {num_sources}")
        self.num_sources = num_sources

    @abstractmethod
    def create_source(self, source_id: int, *, ops: OpCounter | None = None) -> SourceRole:
        """Role for source ``source_id`` (0-based, < ``num_sources``)."""

    @abstractmethod
    def create_aggregator(self, *, ops: OpCounter | None = None) -> AggregatorRole:
        """Role for an aggregator (aggregators are stateless and keyless
        in SIES/CMT; SECOA aggregators hold only public material)."""

    @abstractmethod
    def create_querier(self, *, ops: OpCounter | None = None) -> QuerierRole:
        """Role for the querier, holding all verification material."""

    def wire_codec(self) -> "Any | None":
        """The byte codec serializing this protocol's PSRs, or ``None``.

        Returns a :class:`repro.wire.codec.PSRCodec` bound to this
        instance's framing parameters (modulus width, sketch count…).
        Every built-in protocol provides one; simulators pass it to the
        :class:`~repro.network.channel.Channel` so each hop transmits a
        real encoded frame.  ``None`` (the default for third-party
        protocols without a wire format yet) keeps the channel in the
        analytic, object-passing mode.
        """
        return None

    def _check_source_id(self, source_id: int) -> int:
        if not 0 <= source_id < self.num_sources:
            raise ParameterError(
                f"source_id must be in [0, {self.num_sources}), got {source_id}"
            )
        return source_id
