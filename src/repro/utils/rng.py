"""Deterministic randomness for reproducible simulations.

Experiments must be replayable run-to-run, so every stochastic component
(dataset generator, topology builder, sketch hashing, adversary) draws
from a :class:`DeterministicRandom` seeded from a root seed plus a label.
Key material, by contrast, is generated from the PRF layer
(:mod:`repro.crypto.prf`), never from here.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["DeterministicRandom", "derive_seed"]


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a 64-bit child seed from a root seed and a label path.

    Uses SHA-256 over the decimal seed and the labels so that child
    streams are statistically independent and stable across Python
    versions (``hash()`` randomization would not be).
    """
    h = hashlib.sha256()
    h.update(str(root_seed).encode("ascii"))
    for label in labels:
        h.update(b"/")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


class DeterministicRandom(random.Random):
    """A :class:`random.Random` with labelled child-stream derivation."""

    def __init__(self, seed: int, *labels: str) -> None:
        self._root_seed = seed
        self._labels = labels
        super().__init__(derive_seed(seed, *labels))

    def child(self, *labels: str) -> "DeterministicRandom":
        """An independent stream for a sub-component."""
        return DeterministicRandom(self._root_seed, *self._labels, *labels)

    def random_bytes(self, length: int) -> bytes:
        """*length* pseudo-random bytes (simulation use only, not keys)."""
        return self.getrandbits(length * 8).to_bytes(length, "big") if length else b""
