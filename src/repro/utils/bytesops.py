"""Byte-string and big-integer conversion helpers.

The whole library speaks big-endian, matching the network byte order a
real sensor deployment would use on the wire and the way the paper lays
out the SIES plaintext ``m_i,t`` (value in the most-significant bytes).
"""

from __future__ import annotations

import hmac as _stdlib_hmac

from repro.errors import ParameterError

__all__ = [
    "bytes_to_int",
    "int_to_bytes",
    "int_byte_length",
    "xor_bytes",
    "constant_time_eq",
]


def bytes_to_int(data: bytes) -> int:
    """Interpret *data* as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    When *length* is omitted the minimal number of bytes is used (one
    byte for zero).  A :class:`ParameterError` is raised if *value* does
    not fit in *length* bytes, rather than silently truncating — wire
    framing bugs must never pass silently.
    """
    if value < 0:
        raise ParameterError(f"cannot encode negative integer {value!r}")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    try:
        return value.to_bytes(length, "big")
    except OverflowError as exc:
        raise ParameterError(
            f"integer with {value.bit_length()} bits does not fit in {length} bytes"
        ) from exc


def int_byte_length(value: int) -> int:
    """Number of bytes needed for the big-endian encoding of *value*."""
    if value < 0:
        raise ParameterError(f"negative integer {value!r} has no byte length")
    return max(1, (value.bit_length() + 7) // 8)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Used by SECOA's aggregate inflation certificates (XOR-combined
    HMACs, Katz–Lindell aggregate MACs [28]).
    """
    if len(a) != len(b):
        raise ParameterError(
            f"xor_bytes requires equal lengths, got {len(a)} and {len(b)}"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Timing-safe equality for MAC/secret comparison."""
    return _stdlib_hmac.compare_digest(a, b)
