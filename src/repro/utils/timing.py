"""Wall-clock measurement utilities for the experiment harness.

The paper reports average CPU time per epoch over 20 epochs.  We provide
a :class:`Stopwatch` that accumulates named segments (so a protocol run
can attribute time to *source*, *aggregator* and *querier* work
separately even though the simulation is single-process) plus a
repeat-and-summarize helper for micro-benchmarks of the Table II
constants.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "TimingStats", "time_operation"]


@dataclass
class TimingStats:
    """Summary statistics (seconds) over repeated timing samples."""

    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))


class Stopwatch:
    """Accumulates elapsed time into named segments.

    >>> sw = Stopwatch()
    >>> with sw.measure("source"):
    ...     pass
    >>> sw.seconds("source") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._segments: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def measure(self, segment: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._segments[segment] = self._segments.get(segment, 0.0) + elapsed
            self._counts[segment] = self._counts.get(segment, 0) + 1

    def add(self, segment: str, seconds: float) -> None:
        """Credit *seconds* to *segment* without running a timer."""
        self._segments[segment] = self._segments.get(segment, 0.0) + seconds
        self._counts[segment] = self._counts.get(segment, 0) + 1

    def seconds(self, segment: str) -> float:
        return self._segments.get(segment, 0.0)

    def count(self, segment: str) -> int:
        return self._counts.get(segment, 0)

    def mean_seconds(self, segment: str) -> float:
        n = self._counts.get(segment, 0)
        return self._segments.get(segment, 0.0) / n if n else 0.0

    def segments(self) -> dict[str, float]:
        """A copy of all accumulated segment totals (seconds)."""
        return dict(self._segments)

    def reset(self) -> None:
        self._segments.clear()
        self._counts.clear()


def time_operation(
    operation: Callable[[], object],
    *,
    repeat: int = 5,
    inner_loops: int = 1,
    warmup: int = 1,
) -> TimingStats:
    """Time *operation* ``repeat`` times, amortizing over ``inner_loops``.

    Each recorded sample is the mean per-call time of one batch of
    ``inner_loops`` invocations; *warmup* unrecorded batches run first so
    Python-level caches (bytecode specialization, hash backends) settle.
    """
    stats = TimingStats()
    for _ in range(warmup):
        for _ in range(inner_loops):
            operation()
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(inner_loops):
            operation()
        elapsed = time.perf_counter() - start
        stats.add(elapsed / inner_loops)
    return stats
