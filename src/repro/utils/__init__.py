"""Shared low-level helpers: byte/int codecs, timing, deterministic RNG."""

from repro.utils.bytesops import (
    bytes_to_int,
    constant_time_eq,
    int_byte_length,
    int_to_bytes,
    xor_bytes,
)
from repro.utils.rng import DeterministicRandom, derive_seed
from repro.utils.timing import Stopwatch, TimingStats, time_operation
from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_type,
)

__all__ = [
    "bytes_to_int",
    "int_to_bytes",
    "int_byte_length",
    "xor_bytes",
    "constant_time_eq",
    "DeterministicRandom",
    "derive_seed",
    "Stopwatch",
    "TimingStats",
    "time_operation",
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_type",
]
