"""Small argument-validation helpers used across the library.

These raise :class:`repro.errors.ParameterError` with messages naming
the offending argument, keeping validation one line at call sites.
"""

from __future__ import annotations

from repro.errors import ParameterError

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_type",
]


def check_positive_int(name: str, value: object) -> int:
    """Validate that *value* is an ``int`` strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ParameterError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_nonnegative_int(name: str, value: object) -> int:
    """Validate that *value* is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ParameterError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_in_range(name: str, value: int, low: int, high: int) -> int:
    """Validate ``low <= value <= high`` (inclusive bounds)."""
    if not low <= value <= high:
        raise ParameterError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_type(name: str, value: object, expected: type | tuple[type, ...]) -> object:
    """Validate ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        exp = expected if isinstance(expected, type) else "/".join(t.__name__ for t in expected)
        exp_name = exp.__name__ if isinstance(exp, type) else exp
        raise ParameterError(f"{name} must be {exp_name}, got {type(value).__name__}")
    return value
