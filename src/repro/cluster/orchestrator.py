"""Wiring and pacing: the whole tree as one asyncio TCP cluster.

:class:`EpochOrchestrator` owns the run lifecycle:

1. **bind** — every tree node starts its own server socket on
   ``127.0.0.1:0`` (kernel-assigned ports, no fixtures, no conflicts);
2. **connect** — each child opens its persistent uplink to its parent's
   port; the root connects to the querier;
3. **pipeline** — epochs launch in order through a bounded window (an
   ``asyncio.Semaphore``): up to ``window`` epochs are in flight at
   once, exactly like the logical runtime's ``epoch_interval``
   pipelining but paced by completion instead of a clock;
4. **drain** — uplinks half-close bottom-up (sources first, root last)
   so every in-flight ACK is read before any socket dies, then servers
   stop and :meth:`~repro.cluster.metrics.ClusterTrafficLedger.check_conservation`
   proves no frame went unaccounted.

Epoch deadlines are *relative to the epoch's launch*, so a window-8 run
has eight independent deadline clocks ticking — the hold-and-wait
schedule (``hold_time × height``) is per epoch, not global.

Everything protocol-specific comes from the registered facades
(:func:`repro.protocols.registry.create_protocol`): the orchestrator
drives any protocol that provides a wire codec — sies, cmt, secoa_s,
secoa_m — through the same lifecycle.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.network.channel import EdgeClass
from repro.network.simulator import QUERIER_NODE_ID, Workload
from repro.network.topology import AggregationTree
from repro.cluster.clock import ClusterClock
from repro.cluster.faults import StreamFaultInjector
from repro.cluster.metrics import ClusterRunMetrics, ClusterTrafficLedger
from repro.cluster.node import AggregatorNode, ClusterNode, QuerierNode, SourceNode, require_codec
from repro.protocols.base import SecureAggregationProtocol
from repro.runtime.faults import FaultPlan
from repro.runtime.recovery import expected_contributions
from repro.runtime.transport import RetransmitPolicy, TransportObserver
from repro.utils.validation import check_positive_int

__all__ = ["ClusterConfig", "EpochOrchestrator", "run_cluster"]


def _default_policy() -> RetransmitPolicy:
    # Real-seconds ARQ shape (the RetransmitPolicy defaults are logical
    # ticks).  The worst *delivered* wait — last attempt firing after all
    # four backoffs — is 0.01·(1+1.5+2.25+3.375)·1.25 ≈ 0.10 s, well under
    # the default hold_time, so even a fifth-attempt delivery beats its
    # aggregator's merge deadline with margin to spare for loop lag.
    return RetransmitPolicy(max_retries=4, ack_timeout=0.01, backoff=1.5, jitter=0.25)


@dataclass
class ClusterConfig:
    """Knobs for one TCP cluster run (times in real seconds)."""

    num_epochs: int = 20
    #: First epoch index (epoch 0 is reserved for setup, as elsewhere).
    start_epoch: int = 1
    #: Pipelining bound: epochs concurrently in flight.
    window: int = 8
    #: Merge-deadline spacing per tree level: an aggregator at height h
    #: merges what arrived by ``epoch launch + hold_time * h``.  Keep it
    #: above the ARQ's worst delivered wait or the survivor sets will
    #: (legitimately) fall below what the fault oracle predicts.
    hold_time: float = 0.25
    #: Extra wait at the querier beyond the root's deadline.
    querier_slack: float = 0.25
    #: Per-hop ARQ shape, in real seconds.
    policy: RetransmitPolicy = field(default_factory=_default_policy)
    #: What the stream layer does to envelopes (loss/duplication only;
    #: time-windowed faults are rejected — see repro.cluster.faults).
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Seed for the fault schedule and backoff jitter streams.
    seed: int = 0
    #: When False, querier evaluation is skipped (pure transport runs).
    evaluate: bool = True
    #: Source ids that are known-failed up front (never report).
    failed_sources: frozenset[int] = field(default_factory=frozenset)
    #: ``(kind, attrs)`` hook fed from every node's ARQ and receive path
    #: — the same shape :meth:`RuntimeSimulator.set_observer` accepts,
    #: so one :class:`~repro.obs.adapters.TransportTraceAdapter` traces
    #: either substrate.  Purely observational: never consulted by the
    #: run itself.
    observer: TransportObserver | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive_int("num_epochs", self.num_epochs)
        check_positive_int("window", self.window)
        if self.hold_time <= 0 or self.querier_slack < 0:
            raise SimulationError(
                "hold_time must be positive and querier_slack non-negative"
            )


class EpochOrchestrator:
    """Builds the node fleet and pipelines epochs through it."""

    def __init__(
        self,
        protocol: SecureAggregationProtocol,
        tree: AggregationTree,
        workload: Workload,
        config: ClusterConfig | None = None,
    ) -> None:
        if tree.num_sources != protocol.num_sources:
            raise SimulationError(
                f"topology has {tree.num_sources} sources but protocol was set up "
                f"for {protocol.num_sources}"
            )
        self.protocol = protocol
        self.tree = tree
        self.workload = workload
        self.config = config or ClusterConfig()
        self.codec = require_codec(protocol.wire_codec(), protocol.name)
        self.clock = ClusterClock()
        self.injector = StreamFaultInjector(self.config.plan, seed=self.config.seed)
        self.ledger = ClusterTrafficLedger()
        common = dict(
            ledger=self.ledger,
            injector=self.injector,
            policy=self.config.policy,
            clock=self.clock,
            seed=self.config.seed,
            observer=self.config.observer,
        )
        self.sources = {
            sid: SourceNode(sid, protocol.create_source(sid), self.codec, **common)
            for sid in tree.source_ids
        }
        self.aggregators = {
            aid: AggregatorNode(
                aid,
                protocol.create_aggregator(),
                self.codec,
                is_root=(aid == tree.root_id),
                edge_of_sender={
                    child: (
                        EdgeClass.SOURCE_TO_AGGREGATOR
                        if tree.node(child).is_source
                        else EdgeClass.AGGREGATOR_TO_AGGREGATOR
                    )
                    for child in tree.children(aid)
                },
                **common,
            )
            for aid in tree.aggregator_ids
        }
        self.querier = QuerierNode(
            QUERIER_NODE_ID,
            protocol.create_querier(),
            self.codec,
            num_sources=tree.num_sources,
            evaluate=self.config.evaluate,
            edge_of_sender={tree.root_id: EdgeClass.AGGREGATOR_TO_QUERIER},
            **common,
        )
        self._heights = self._node_heights()
        self._ran = False

    def _node_heights(self) -> dict[int, int]:
        heights: dict[int, int] = {sid: 0 for sid in self.tree.source_ids}
        for aid in self.tree.bottom_up_aggregators():
            heights[aid] = 1 + max(heights[c] for c in self.tree.children(aid))
        return heights

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _all_nodes(self) -> list[ClusterNode]:
        return [*self.sources.values(), *self.aggregators.values(), self.querier]

    async def _bind_and_connect(self) -> None:
        for node in self._all_nodes():
            await node.start()
        for sid, source in self.sources.items():
            parent = self.tree.parent(sid)
            if parent is None:
                raise SimulationError(f"source {sid} has no parent aggregator")
            await source.connect_uplink(
                parent, self.aggregators[parent].port, EdgeClass.SOURCE_TO_AGGREGATOR
            )
        for aid, aggregator in self.aggregators.items():
            parent = self.tree.parent(aid)
            if parent is None:
                await aggregator.connect_uplink(
                    QUERIER_NODE_ID, self.querier.port, EdgeClass.AGGREGATOR_TO_QUERIER
                )
            else:
                await aggregator.connect_uplink(
                    parent, self.aggregators[parent].port, EdgeClass.AGGREGATOR_TO_AGGREGATOR
                )

    async def _shutdown(self) -> None:
        # Bottom-up: leaves half-close first, so each parent sees EOF only
        # after all child traffic, ACKs everything, and only then does the
        # parent's own uplink close — no ACK is ever stranded in a buffer.
        for source in self.sources.values():
            await source.close_uplink()
        for aid in self.tree.bottom_up_aggregators():
            await self.aggregators[aid].close_uplink()
        for node in self._all_nodes():
            await node.stop()

    # ------------------------------------------------------------------
    # Epoch pipeline
    # ------------------------------------------------------------------

    async def _run_epoch(self, epoch: int, window: asyncio.Semaphore):
        async with window:
            attempted = frozenset(
                sid for sid in self.tree.source_ids if sid not in self.config.failed_sources
            )
            pre_failed = frozenset(self.tree.source_ids) - attempted
            expected = expected_contributions(self.tree, attempted)
            self.querier.open_epoch(epoch, attempted, pre_failed)
            live = [aid for aid in self.tree.aggregator_ids if expected[aid] > 0]
            for aid in live:
                self.aggregators[aid].open_epoch(epoch, expected[aid])
            deadline = (
                self.config.hold_time * (self._heights[self.tree.root_id] + 1)
                + self.config.querier_slack
            )
            querier_task = asyncio.ensure_future(self.querier.run_epoch(epoch, deadline))
            others = [
                self.aggregators[aid].run_epoch(epoch, self.config.hold_time * self._heights[aid])
                for aid in live
            ] + [
                self.sources[sid].run_epoch(epoch, self.workload(sid, epoch))
                for sid in sorted(attempted)
            ]
            await asyncio.gather(querier_task, *others)
            return querier_task.result()

    async def run(self) -> ClusterRunMetrics:
        """Execute the configured epochs over real sockets.

        One-shot, like :meth:`RuntimeSimulator.run`: dedup state and the
        fault schedule are bound to this fleet.
        """
        if self._ran:
            raise SimulationError(
                "EpochOrchestrator.run is one-shot; construct a new orchestrator "
                "for an independent (and reproducible) run"
            )
        self._ran = True
        metrics = ClusterRunMetrics(
            protocol=self.protocol.name,
            num_sources=self.tree.num_sources,
            seed=self.config.seed,
            window=self.config.window,
        )
        await self._bind_and_connect()
        started = self.clock.now()
        try:
            window = asyncio.Semaphore(self.config.window)
            results = await asyncio.gather(
                *(
                    self._run_epoch(self.config.start_epoch + offset, window)
                    for offset in range(self.config.num_epochs)
                )
            )
        finally:
            metrics.wall_seconds = self.clock.now() - started
            await self._shutdown()
        metrics.epochs = sorted(results, key=lambda r: r.epoch)
        for result in metrics.epochs:
            metrics.recovery.record(result.recovery)
        metrics.traffic = self.ledger
        self.ledger.check_conservation()
        return metrics


def run_cluster(
    protocol: SecureAggregationProtocol,
    tree: AggregationTree,
    workload: Workload,
    config: ClusterConfig | None = None,
) -> ClusterRunMetrics:
    """Synchronous entry point: build the fleet, run it, tear it down."""
    return asyncio.run(EpochOrchestrator(protocol, tree, workload, config).run())
