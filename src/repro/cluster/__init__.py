"""The aggregation tree over real sockets: an asyncio TCP cluster.

Runs the same Initialization → Merging → Evaluation process as the
logical-clock runtimes, but with every tree node bound to a real TCP
server on localhost and every PSR crossing a real socket inside a
:mod:`repro.cluster.envelope` frame.  Loss is injected deterministically
at the stream layer (:mod:`repro.cluster.faults`), recovery is the
paper's reported-failure subset, and the traffic ledger proves zero
silent drops.  See ``docs/cluster.md``.
"""

from repro.cluster.envelope import (
    CLUSTER_ACK_WIRE_ID,
    CLUSTER_DATA_WIRE_ID,
    AckEnvelope,
    DataEnvelope,
    decode_envelope,
    encode_ack,
    encode_data,
)
from repro.cluster.faults import StreamFaultInjector, StreamVerdict, parcel_fate
from repro.cluster.framing import DEFAULT_MAX_PAYLOAD, FrameAssembler, FrameReader, FrameWriter
from repro.cluster.metrics import (
    ClusterEpochResult,
    ClusterRunMetrics,
    ClusterTrafficLedger,
    EdgeCounters,
)
from repro.cluster.node import AggregatorNode, ClusterNode, QuerierNode, SourceNode
from repro.cluster.orchestrator import ClusterConfig, EpochOrchestrator, run_cluster

__all__ = [
    "CLUSTER_ACK_WIRE_ID",
    "CLUSTER_DATA_WIRE_ID",
    "AckEnvelope",
    "DataEnvelope",
    "decode_envelope",
    "encode_ack",
    "encode_data",
    "StreamFaultInjector",
    "StreamVerdict",
    "parcel_fate",
    "DEFAULT_MAX_PAYLOAD",
    "FrameAssembler",
    "FrameReader",
    "FrameWriter",
    "ClusterEpochResult",
    "ClusterRunMetrics",
    "ClusterTrafficLedger",
    "EdgeCounters",
    "AggregatorNode",
    "ClusterNode",
    "QuerierNode",
    "SourceNode",
    "ClusterConfig",
    "EpochOrchestrator",
    "run_cluster",
]
