"""Tree nodes as asyncio TCP servers speaking the wire format.

Every node of the aggregation tree — source, aggregator, querier — runs
inside one process as an asyncio task bound to its own real TCP server
socket on ``127.0.0.1`` (port 0, kernel-assigned).  Child nodes open a
client connection to their parent's server and keep it for the whole
run; data envelopes flow up that connection and transport ACKs flow
back down it, so the hop looks exactly like the paper's one-hop radio
link with a MAC-layer ARQ on top:

* each application send becomes one *parcel* (uid = epoch: a node sends
  exactly one PSR per epoch per hop) driven by :meth:`ClusterNode._send_reliable`
  — bounded retransmission with exponential backoff and deterministic
  jitter, mirroring :class:`~repro.runtime.transport.ReliableTransport`;
* the inner protocol frame is encoded **once** per parcel and carried
  byte-identical across retransmissions; only the envelope's attempt
  counter changes (see :mod:`repro.cluster.envelope`);
* the receiver delivers the first copy per ``(sender, uid)`` to the
  protocol role, suppresses duplicates, counts late and undecodable
  copies, and ACKs every received copy — unless the seeded fault
  schedule (:mod:`repro.cluster.faults`) swallows the ACK;
* a sender giving up does **not** retract a delivered copy: downstream
  correctness derives from the manifests receivers really merged.

Roles reuse the protocol role objects unchanged: the aggregator holds
and waits (merge at ``epoch launch + hold_time × height``, or as soon
as every expected child arrived), the querier turns the final manifest
into the paper's reported-failure subset and evaluates the exact SUM
over the survivors (:class:`~repro.runtime.recovery.EpochRecovery`).
"""

from __future__ import annotations

import asyncio

from repro.errors import (
    ConfigurationError,
    SecurityError,
    SimulationError,
    WireDecodeError,
    WireEncodeError,
)
from repro.network.channel import EdgeClass
from repro.cluster.clock import ClusterClock
from repro.cluster.envelope import AckEnvelope, DataEnvelope, decode_envelope, encode_ack, encode_data
from repro.cluster.faults import StreamFaultInjector
from repro.cluster.framing import FrameReader, FrameWriter
from repro.cluster.metrics import ClusterEpochResult, ClusterTrafficLedger
from repro.protocols.base import AggregatorRole, PartialStateRecord, QuerierRole, SourceRole
from repro.runtime.recovery import EpochRecovery
from repro.runtime.transport import RetransmitPolicy, TransportObserver
from repro.utils.rng import DeterministicRandom
from repro.wire.codec import PSRCodec

__all__ = ["ClusterNode", "SourceNode", "AggregatorNode", "QuerierNode"]

_HOST = "127.0.0.1"

# Dispositions of a first-copy arrival (ledger classification).
_DELIVERED = "delivered"
_LATE = "late"
_DECODE_FAILURE = "decode_failure"


class ClusterNode:
    """One tree node: a TCP server plus an optional uplink to its parent."""

    def __init__(
        self,
        node_id: int,
        *,
        ledger: ClusterTrafficLedger,
        injector: StreamFaultInjector,
        policy: RetransmitPolicy,
        clock: ClusterClock,
        seed: int,
        edge_of_sender: dict[int, EdgeClass],
        observer: TransportObserver | None = None,
    ) -> None:
        self.node_id = node_id
        self.ledger = ledger
        self.injector = injector
        self.policy = policy
        self.clock = clock
        self.seed = seed
        #: Same ``(kind, attrs)`` hook shape as the runtime's
        #: :class:`~repro.runtime.transport.ReliableTransport`, so one
        #: trace adapter observes both substrates.
        self.observer = observer
        #: child node id → edge class of the link it sends on.
        self._edge_of_sender = edge_of_sender
        self._server: asyncio.Server | None = None
        self.port: int | None = None
        # Uplink to the parent (absent on the querier).
        self._parent_id: int | None = None
        self._parent_edge: EdgeClass | None = None
        self._uplink_writer: FrameWriter | None = None
        self._uplink_stream: asyncio.StreamWriter | None = None
        self._ack_task: asyncio.Task | None = None
        #: parcel uid → event set when its ACK arrives.
        self._pending_acks: dict[int, asyncio.Event] = {}
        #: (sender, uid) pairs already delivered (duplicate suppression).
        self._seen: set[tuple[int, int]] = set()
        #: Frames that failed envelope parsing on an inbound connection —
        #: impossible from a well-behaved peer; conservation catches the
        #: imbalance and this counter names the culprit node.
        self.stream_errors = 0
        self._inbound: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> int:
        """Bind the node's server socket; returns the kernel-assigned port."""
        if self._server is not None:
            raise SimulationError(f"node {self.node_id} already started")
        self._server = await asyncio.start_server(self._on_connection, host=_HOST, port=0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def connect_uplink(self, parent_id: int, port: int, edge: EdgeClass) -> None:
        """Open the persistent client connection to the parent's server."""
        if self._uplink_writer is not None:
            raise SimulationError(f"node {self.node_id} already has an uplink")
        reader, writer = await asyncio.open_connection(_HOST, port)
        self._parent_id = parent_id
        self._parent_edge = edge
        self._uplink_stream = writer
        self._uplink_writer = FrameWriter(writer)
        self._ack_task = asyncio.ensure_future(self._ack_loop(FrameReader(reader)))

    async def close_uplink(self) -> None:
        """Half-close the uplink (FIN), drain remaining ACKs, then close.

        The half-close ordering is what keeps the ACK conservation law
        exact at shutdown: the parent sees our EOF only after all data,
        replies to everything, then closes its side — and our ACK loop
        reads every byte the parent wrote before observing EOF.
        """
        if self._uplink_stream is None:
            return
        if self._uplink_stream.can_write_eof():
            self._uplink_stream.write_eof()
        if self._ack_task is not None:
            await self._ack_task
        self._uplink_stream.close()
        await self._uplink_stream.wait_closed()
        self._uplink_stream = None
        self._uplink_writer = None

    async def stop(self) -> None:
        """Stop accepting, then wait for inbound handlers to drain."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._inbound):
            await task

    # ------------------------------------------------------------------
    # Inbound: data envelopes from children
    # ------------------------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._inbound.add(task)
        task.add_done_callback(self._inbound.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frames = FrameReader(reader)
        acks = FrameWriter(writer)
        try:
            while True:
                try:
                    frame = await frames.read_frame()
                except WireDecodeError:
                    self.stream_errors += 1
                    break
                if frame is None:
                    break
                try:
                    envelope = decode_envelope(frame)
                except WireDecodeError:
                    self.stream_errors += 1
                    break
                if not isinstance(envelope, DataEnvelope):
                    # Children never send ACKs upstream; a stray one means
                    # the peer is broken — drop the connection.
                    self.stream_errors += 1
                    break
                await self._handle_data(envelope, acks)
        finally:
            writer.close()
            await writer.wait_closed()

    def _classify(self, sender: int) -> EdgeClass:
        edge = self._edge_of_sender.get(sender)
        if edge is None:
            raise SimulationError(
                f"node {self.node_id} received a frame from {sender}, which is "
                "not one of its children in the aggregation tree"
            )
        return edge

    def _emit(
        self,
        kind: str,
        *,
        epoch: int,
        uid: int,
        attempt: int,
        edge: EdgeClass,
        sender: int,
        receiver: int,
        **extra: object,
    ) -> None:
        """Notify the observer with the runtime transport's attribute keys."""
        if self.observer is None:
            return
        attrs: dict = {
            "time": self.clock.now(),
            "epoch": epoch,
            "uid": uid,
            "attempt": attempt,
            "edge": edge.value,
            "sender": sender,
            "receiver": receiver,
        }
        attrs.update(extra)
        self.observer(kind, attrs)

    async def _handle_data(self, envelope: DataEnvelope, acks: FrameWriter) -> None:
        edge = self._classify(envelope.sender)
        counters = self.ledger.edge(edge)
        counters.frames_received += 1
        key = (envelope.sender, envelope.uid)
        if key in self._seen:
            counters.duplicates_suppressed += 1
            disposition_kind = "duplicate"
        else:
            self._seen.add(key)
            disposition = self._deliver(envelope)
            if disposition == _DELIVERED:
                counters.delivered += 1
                disposition_kind = "deliver"
            elif disposition == _LATE:
                counters.late_frames += 1
                disposition_kind = "late"
            else:
                counters.decode_failures += 1
                disposition_kind = "decode_failure"
        self._emit(
            disposition_kind,
            epoch=envelope.epoch,
            uid=envelope.uid,
            attempt=envelope.attempt,
            edge=edge,
            sender=envelope.sender,
            receiver=self.node_id,
        )
        # Transport ACK for every received copy — even duplicates, even
        # undecodable inner frames (the *transport* delivered fine) —
        # unless the seeded schedule swallows it on the way back.
        if self.injector.ack_verdict(
            envelope.sender, self.node_id, edge, envelope.uid, envelope.attempt
        ):
            counters.acks_dropped += 1
            self._emit(
                "ack_lost",
                epoch=envelope.epoch,
                uid=envelope.uid,
                attempt=envelope.attempt,
                edge=edge,
                sender=envelope.sender,
                receiver=self.node_id,
            )
        else:
            ack = encode_ack(epoch=envelope.epoch, uid=envelope.uid, attempt=envelope.attempt)
            await acks.write_frame(ack)
            counters.acks_sent += 1
            counters.ack_bytes += len(ack)

    def _deliver(self, envelope: DataEnvelope) -> str:
        """Role-specific handling of a first copy; returns its disposition."""
        raise SimulationError(f"node {self.node_id} does not accept data frames")

    # ------------------------------------------------------------------
    # Outbound: the per-hop ARQ over the uplink
    # ------------------------------------------------------------------

    async def _ack_loop(self, frames: FrameReader) -> None:
        while True:
            try:
                frame = await frames.read_frame()
            except WireDecodeError:
                self.stream_errors += 1
                return
            if frame is None:
                return
            try:
                envelope = decode_envelope(frame)
            except WireDecodeError:
                self.stream_errors += 1
                return
            if not isinstance(envelope, AckEnvelope) or self._parent_edge is None:
                self.stream_errors += 1
                return
            self.ledger.edge(self._parent_edge).acks_received += 1
            event = self._pending_acks.get(envelope.uid)
            if event is not None:
                event.set()

    def _backoff_u(self, uid: int, attempt: int) -> float:
        """Jitter variate for one attempt — keyed, so independent of timing."""
        rng = DeterministicRandom(
            self.seed,
            "cluster",
            "backoff",
            f"{self.node_id}->{self._parent_id}",
            f"uid:{uid}",
            f"try:{attempt}",
        )
        return rng.random()

    async def _send_reliable(
        self, *, epoch: int, uid: int, manifest: frozenset[int], inner: bytes
    ) -> bool:
        """Run one parcel through the ARQ; True once ACKed, False on give-up.

        The delivered-or-not outcome is the keyed fault schedule's, not
        the event loop's: an attempt the schedule spares is physically
        written (TCP then delivers it), an attempt it swallows is never
        written.  Slow ACKs can only add extra attempts whose copies the
        receiver suppresses — see :func:`repro.cluster.faults.parcel_fate`.
        """
        if self._uplink_writer is None or self._parent_edge is None or self._parent_id is None:
            raise SimulationError(f"node {self.node_id} has no uplink to send on")
        counters = self.ledger.edge(self._parent_edge)
        event = asyncio.Event()
        self._pending_acks[uid] = event
        try:
            for attempt in range(self.policy.max_attempts):
                counters.attempts += 1
                if attempt:
                    counters.retransmissions += 1
                self._emit(
                    "attempt",
                    epoch=epoch,
                    uid=uid,
                    attempt=attempt,
                    edge=self._parent_edge,
                    sender=self.node_id,
                    receiver=self._parent_id,
                )
                verdict = self.injector.data_verdict(
                    self.node_id, self._parent_id, self._parent_edge, uid, attempt
                )
                if verdict.lost:
                    counters.drops_injected += 1
                    self._emit(
                        "drop",
                        epoch=epoch,
                        uid=uid,
                        attempt=attempt,
                        edge=self._parent_edge,
                        sender=self.node_id,
                        receiver=self._parent_id,
                        cause="link",
                    )
                else:
                    frame = encode_data(
                        epoch=epoch,
                        sender=self.node_id,
                        uid=uid,
                        attempt=attempt,
                        manifest=manifest,
                        inner=inner,
                    )
                    for _ in range(verdict.copies):
                        await self._uplink_writer.write_frame(frame)
                        counters.frames_sent += 1
                        counters.envelope_bytes += len(frame)
                    counters.dup_copies += verdict.copies - 1
                timeout = self.policy.timeout_for(attempt, self._backoff_u(uid, attempt))
                try:
                    await self.clock.wait_for(event.wait(), timeout)
                    return True
                except TimeoutError:
                    continue
            counters.gave_up += 1
            self._emit(
                "give_up",
                epoch=epoch,
                uid=uid,
                attempt=self.policy.max_attempts - 1,
                edge=self._parent_edge,
                sender=self.node_id,
                receiver=self._parent_id,
            )
            return False
        finally:
            del self._pending_acks[uid]

    async def _send_psr(
        self,
        codec: PSRCodec,
        *,
        epoch: int,
        psr: PartialStateRecord,
        manifest: frozenset[int],
    ) -> bool:
        """Encode *psr* once, cross-check the size contract, run the ARQ."""
        if self._parent_edge is None:
            raise SimulationError(f"node {self.node_id} has no uplink to send on")
        inner = codec.encode(psr)
        expected = codec.framed_size(psr)
        if len(inner) != expected:
            raise WireEncodeError(
                f"{len(inner)}-byte frame for a PSR whose analytic size announces "
                f"{expected} bytes — wire format and model have diverged"
            )
        self.ledger.edge(self._parent_edge).psr_bytes += len(inner)
        return await self._send_reliable(epoch=epoch, uid=epoch, manifest=manifest, inner=inner)


class SourceNode(ClusterNode):
    """Initialization phase ``I`` at a leaf: value → PSR → uplink."""

    def __init__(self, node_id: int, role: SourceRole, codec: PSRCodec, **kwargs) -> None:
        super().__init__(node_id, edge_of_sender={}, **kwargs)
        self.role = role
        self.codec = codec

    async def run_epoch(self, epoch: int, value: int) -> bool:
        psr = self.role.initialize(epoch, value)
        return await self._send_psr(
            self.codec, epoch=epoch, psr=psr, manifest=frozenset((self.node_id,))
        )


class _AggregatorEpoch:
    """Inbox and deadline state of one in-flight epoch at an aggregator."""

    __slots__ = ("expected", "inbox", "complete", "closed")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.inbox: list[tuple[PartialStateRecord, frozenset[int]]] = []
        #: Set when every expected child contribution has arrived.
        self.complete = asyncio.Event()
        self.closed = False


class AggregatorNode(ClusterNode):
    """Merging phase ``M``: hold-and-wait, then forward PSR + manifest."""

    def __init__(
        self,
        node_id: int,
        role: AggregatorRole,
        codec: PSRCodec,
        *,
        is_root: bool,
        **kwargs,
    ) -> None:
        super().__init__(node_id, **kwargs)
        self.role = role
        self.codec = codec
        self.is_root = is_root
        self._epochs: dict[int, _AggregatorEpoch] = {}

    def _deliver(self, envelope: DataEnvelope) -> str:
        state = self._epochs.get(envelope.epoch)
        if state is None or state.closed:
            return _LATE
        try:
            psr = self.codec.decode(envelope.inner)
        except WireDecodeError:
            return _DECODE_FAILURE
        state.inbox.append((psr, envelope.manifest))
        if len(state.inbox) >= state.expected:
            state.complete.set()
        return _DELIVERED

    def open_epoch(self, epoch: int, expected: int) -> None:
        """Register the epoch's inbox *before* any child may send.

        Synchronous on purpose: the orchestrator opens every epoch on
        every node in one event-loop step, then launches the sources —
        so an early arrival can never race an unregistered inbox.
        """
        if epoch in self._epochs:
            raise SimulationError(f"aggregator {self.node_id} already opened epoch {epoch}")
        self._epochs[epoch] = _AggregatorEpoch(expected)

    async def run_epoch(self, epoch: int, hold: float) -> None:
        """Hold until deadline *hold* (or all expected children), merge, forward."""
        state = self._epochs.get(epoch)
        if state is None:
            raise SimulationError(
                f"aggregator {self.node_id} ran epoch {epoch} without opening it"
            )
        try:
            await self.clock.wait_for(state.complete.wait(), hold)
        except TimeoutError:
            pass  # deadline merge: take whatever arrived
        state.closed = True
        if not state.inbox:
            return  # whole subtree lost this epoch; nothing to forward
        psrs = [psr for psr, _ in state.inbox]
        manifest = frozenset().union(*(man for _, man in state.inbox))
        merged = self.role.merge(epoch, psrs)
        if self.is_root:
            merged = self.role.finalize_for_querier(merged)
        await self._send_psr(self.codec, epoch=epoch, psr=merged, manifest=manifest)


class _QuerierEpoch:
    """One epoch awaiting its final PSR at the querier."""

    __slots__ = ("attempted", "pre_failed", "started_at", "settled", "closed", "result")

    def __init__(self, attempted: frozenset[int], pre_failed: frozenset[int], started_at: float) -> None:
        self.attempted = attempted
        self.pre_failed = pre_failed
        self.started_at = started_at
        self.settled = asyncio.Event()
        self.closed = False
        self.result: ClusterEpochResult | None = None


class QuerierNode(ClusterNode):
    """Evaluation phase ``E``: recovery subset + exact SUM over survivors."""

    def __init__(
        self,
        node_id: int,
        role: QuerierRole,
        codec: PSRCodec,
        *,
        num_sources: int,
        evaluate: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(node_id, **kwargs)
        self.role = role
        self.codec = codec
        self.num_sources = num_sources
        self.evaluate = evaluate
        self._epochs: dict[int, _QuerierEpoch] = {}

    def _deliver(self, envelope: DataEnvelope) -> str:
        state = self._epochs.get(envelope.epoch)
        if state is None or state.closed:
            return _LATE
        try:
            psr = self.codec.decode(envelope.inner)
        except WireDecodeError:
            return _DECODE_FAILURE
        state.closed = True
        recovery = EpochRecovery.from_final_manifest(
            envelope.epoch,
            attempted=state.attempted,
            manifest=envelope.manifest,
            pre_failed=state.pre_failed,
        )
        result = ClusterEpochResult(
            epoch=envelope.epoch,
            recovery=recovery,
            completion_latency=self.clock.now() - state.started_at,
        )
        if self.evaluate:
            subset = recovery.reporting_subset(self.num_sources)
            try:
                result.result = self.role.evaluate(envelope.epoch, psr, reporting_sources=subset)
            except SecurityError as exc:
                result.security_failure = type(exc).__name__
        state.result = result
        state.settled.set()
        return _DELIVERED

    def open_epoch(
        self, epoch: int, attempted: frozenset[int], pre_failed: frozenset[int]
    ) -> None:
        """Register the epoch (and stamp its start) before any source sends."""
        if epoch in self._epochs:
            raise SimulationError(f"querier already opened epoch {epoch}")
        self._epochs[epoch] = _QuerierEpoch(attempted, pre_failed, self.clock.now())

    async def run_epoch(self, epoch: int, deadline: float) -> ClusterEpochResult:
        """Wait up to *deadline* seconds for the final PSR; settle the epoch."""
        state = self._epochs.get(epoch)
        if state is None:
            raise SimulationError(f"querier ran epoch {epoch} without opening it")
        try:
            await self.clock.wait_for(state.settled.wait(), deadline)
        except TimeoutError:
            pass
        if state.result is None:
            # Nothing arrived: the epoch is lost, not wrong.  MessageLost
            # (the network swallowed every path) stays distinct from
            # NoResult (no source ever reported).
            state.closed = True
            recovery = EpochRecovery(
                epoch=epoch,
                attempted=state.attempted,
                survivors=frozenset(),
                pre_failed=state.pre_failed,
                converged=False,
            )
            state.result = ClusterEpochResult(
                epoch=epoch,
                recovery=recovery,
                security_failure="MessageLost" if state.attempted else "NoResult",
            )
        return state.result


def require_codec(codec: PSRCodec | None, protocol_name: str) -> PSRCodec:
    """The cluster cannot run a protocol that has no wire format."""
    if codec is None:
        raise ConfigurationError(
            f"protocol {protocol_name!r} provides no wire codec; the TCP cluster "
            "only transports real byte frames"
        )
    return codec
