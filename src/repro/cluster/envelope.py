"""Cluster hop envelopes: the per-hop transport metadata around a PSR.

In the in-process runtimes the manifest of contributing sources and the
ACK signal travel out-of-band as Python arguments.  Over real sockets
they must be bytes, so the cluster defines two control frames that use
the *same* 16-byte header format as every PSR frame (ids pinned in
:mod:`repro.protocols.registry`, so they can never collide with a
protocol codec):

``cluster/data`` (id 240) — one application send across one hop::

    offset  size  field
    ------  ----  ---------------------------------------------------
         0     4  sender node id        (big-endian unsigned)
         4     8  parcel uid            (big-endian unsigned)
        12     1  attempt               (0-based ARQ attempt counter)
        13     4  manifest count M      (big-endian unsigned)
        17   4*M  manifest source ids   (sorted ascending, unsigned)
     17+4M     …  inner PSR frame       (verbatim protocol frame bytes)

``cluster/ack`` (id 241) — the transport acknowledgement::

    offset  size  field
    ------  ----  ---------------------------------------------------
         0     8  parcel uid
         8     1  attempt being acknowledged

The inner PSR frame is carried **verbatim** and is byte-identical across
retransmissions (the ARQ encodes once per parcel, exactly like
:class:`repro.runtime.transport.Parcel`); only the envelope's 1-byte
attempt counter changes per retry — the moral equivalent of a MAC-layer
retry flag.  The attempt counter keys the deterministic fault schedule
(:mod:`repro.cluster.faults`); like every frame header field it is
plaintext transport metadata, and no protocol derives security from it.

Decoding raises only the typed :class:`~repro.errors.WireDecodeError`
family.  The inner frame bytes are *not* validated here: a corrupted
inner frame must still be deliverable so the receiving node can count
it as a decode failure (nothing is silently dropped).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrameProtocolIdError, PayloadFormatError, WireEncodeError
from repro.protocols.registry import register_wire_protocol_id
from repro.wire.frame import decode_frame, encode_frame

__all__ = [
    "CLUSTER_DATA_WIRE_ID",
    "CLUSTER_ACK_WIRE_ID",
    "DataEnvelope",
    "AckEnvelope",
    "encode_data",
    "encode_ack",
    "decode_envelope",
]

#: Frame-header ids for the cluster control plane (registered alongside
#: the protocol codec ids; high values leave room for future protocols).
CLUSTER_DATA_WIRE_ID = register_wire_protocol_id("cluster/data", 240)
CLUSTER_ACK_WIRE_ID = register_wire_protocol_id("cluster/ack", 241)

_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1
#: Manifest entries accepted per envelope (well above any supported N,
#: well below an allocation hazard).
MAX_MANIFEST = 1 << 20

#: sender(4) + uid(8) + attempt(1) + manifest count(4).
_DATA_FIXED = 17
#: uid(8) + attempt(1).
_ACK_LEN = 9


@dataclass(frozen=True)
class DataEnvelope:
    """A decoded ``cluster/data`` frame."""

    epoch: int
    sender: int
    uid: int
    attempt: int
    manifest: frozenset[int]
    #: The embedded protocol frame, verbatim (possibly corrupted bytes —
    #: the receiving role decodes and accounts for it).
    inner: bytes


@dataclass(frozen=True)
class AckEnvelope:
    """A decoded ``cluster/ack`` frame."""

    epoch: int
    uid: int
    attempt: int


def _check_u32(name: str, value: int) -> int:
    if not 0 <= value <= _U32_MAX:
        raise WireEncodeError(f"{name} {value} does not fit the 4-byte field")
    return value


def encode_data(
    *,
    epoch: int,
    sender: int,
    uid: int,
    attempt: int,
    manifest: frozenset[int],
    inner: bytes,
) -> bytes:
    """Assemble one ``cluster/data`` frame."""
    _check_u32("sender", sender)
    if not 0 <= uid <= _U64_MAX:
        raise WireEncodeError(f"uid {uid} does not fit the 8-byte field")
    if not 0 <= attempt <= 0xFF:
        raise WireEncodeError(f"attempt {attempt} does not fit the 1-byte field")
    if len(manifest) > MAX_MANIFEST:
        raise WireEncodeError(
            f"manifest of {len(manifest)} ids exceeds the {MAX_MANIFEST} cap"
        )
    ids = sorted(manifest)
    for sid in ids:
        _check_u32("manifest id", sid)
    payload = (
        sender.to_bytes(4, "big")
        + uid.to_bytes(8, "big")
        + bytes((attempt,))
        + len(ids).to_bytes(4, "big")
        + b"".join(sid.to_bytes(4, "big") for sid in ids)
        + inner
    )
    return encode_frame(CLUSTER_DATA_WIRE_ID, epoch, payload)


def encode_ack(*, epoch: int, uid: int, attempt: int) -> bytes:
    """Assemble one ``cluster/ack`` frame."""
    if not 0 <= uid <= _U64_MAX:
        raise WireEncodeError(f"uid {uid} does not fit the 8-byte field")
    if not 0 <= attempt <= 0xFF:
        raise WireEncodeError(f"attempt {attempt} does not fit the 1-byte field")
    payload = uid.to_bytes(8, "big") + bytes((attempt,))
    return encode_frame(CLUSTER_ACK_WIRE_ID, epoch, payload)


def _decode_data_payload(epoch: int, payload: bytes) -> DataEnvelope:
    if len(payload) < _DATA_FIXED:
        raise PayloadFormatError(
            f"cluster/data payload of {len(payload)} bytes is shorter than the "
            f"{_DATA_FIXED}-byte fixed part"
        )
    sender = int.from_bytes(payload[0:4], "big")
    uid = int.from_bytes(payload[4:12], "big")
    attempt = payload[12]
    count = int.from_bytes(payload[13:17], "big")
    if count > MAX_MANIFEST:
        raise PayloadFormatError(
            f"cluster/data announces {count} manifest ids, over the {MAX_MANIFEST} cap"
        )
    end = _DATA_FIXED + 4 * count
    if len(payload) < end:
        raise PayloadFormatError(
            f"cluster/data announces {count} manifest ids but only "
            f"{len(payload) - _DATA_FIXED} bytes follow"
        )
    ids = [int.from_bytes(payload[off : off + 4], "big") for off in range(_DATA_FIXED, end, 4)]
    manifest = frozenset(ids)
    if len(manifest) != count:
        raise PayloadFormatError("cluster/data manifest contains duplicate source ids")
    return DataEnvelope(
        epoch=epoch,
        sender=sender,
        uid=uid,
        attempt=attempt,
        manifest=manifest,
        inner=payload[end:],
    )


def _decode_ack_payload(epoch: int, payload: bytes) -> AckEnvelope:
    if len(payload) != _ACK_LEN:
        raise PayloadFormatError(
            f"cluster/ack payload must be {_ACK_LEN} bytes, got {len(payload)}"
        )
    return AckEnvelope(
        epoch=epoch,
        uid=int.from_bytes(payload[0:8], "big"),
        attempt=payload[8],
    )


def decode_envelope(frame: bytes) -> DataEnvelope | AckEnvelope:
    """Parse one cluster control frame (data or ack)."""
    header, payload = decode_frame(frame)
    if header.protocol_id == CLUSTER_DATA_WIRE_ID:
        return _decode_data_payload(header.epoch, payload)
    if header.protocol_id == CLUSTER_ACK_WIRE_ID:
        return _decode_ack_payload(header.epoch, payload)
    raise FrameProtocolIdError(
        f"frame carries protocol id {header.protocol_id}, not a cluster "
        f"envelope ({CLUSTER_DATA_WIRE_ID} or {CLUSTER_ACK_WIRE_ID})"
    )
