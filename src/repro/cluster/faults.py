"""Seeded loss injection at the cluster's stream layer.

TCP never loses bytes, so the cluster injects loss *before* the socket:
when the fault schedule says an attempt is lost, the sender simply does
not write the envelope (and counts the drop) — from the receiver's point
of view this is indistinguishable from a radio swallowing the packet,
which is exactly the PR 3 fault semantics transplanted to real sockets.

Determinism under real concurrency
----------------------------------

:class:`repro.runtime.faults.FaultInjector` draws from one sequential
stream per edge, which is deterministic under the logical-time scheduler
but would make outcomes depend on OS timing here (pipelined epochs
interleave their attempts on shared edges nondeterministically).  The
cluster therefore keys every decision by the full attempt coordinate::

    (sender, receiver, parcel uid, attempt index)

via independent :class:`~repro.utils.rng.DeterministicRandom` streams.
A verdict is a pure function of the seed and that coordinate — *no
matter when or in what order the attempts happen* — so the set of
parcels that ultimately deliver (and hence every epoch's survivor set
and exact SUM) is reproducible run to run and computable in advance by
:func:`parcel_fate`, the oracle the differential tests replay.

Reused from the PR 3 plan: per-edge-class :class:`LinkProfile` loss and
duplication rates.  Latency/jitter are *not* simulated — real sockets
provide real latency — and time-windowed features (bursts, outages) are
rejected because the cluster has no logical clock to window them on.
"""

from __future__ import annotations

from repro.network.channel import EdgeClass
from repro.runtime.faults import KeyedFaultInjector, KeyedVerdict
from repro.runtime.transport import RetransmitPolicy

__all__ = ["StreamVerdict", "StreamFaultInjector", "parcel_fate"]


#: What the injected fault model does to one envelope write — the
#: substrate-neutral :class:`~repro.runtime.faults.KeyedVerdict` under
#: its historical cluster name.
StreamVerdict = KeyedVerdict


class StreamFaultInjector(KeyedFaultInjector):
    """Deterministic, order-independent fault oracle for stream sends.

    The keyed-draw logic now lives in
    :class:`~repro.runtime.faults.KeyedFaultInjector` so the runtime can
    replay the identical schedule (``RuntimeConfig.keyed_faults``); this
    subclass exists to keep the cluster's public name and import path
    stable.  Stream labels are unchanged — same seed, same verdicts as
    every earlier release.
    """


def parcel_fate(
    injector: KeyedFaultInjector,
    policy: RetransmitPolicy,
    sender: int,
    receiver: int,
    edge: EdgeClass,
    uid: int,
) -> tuple[bool, int]:
    """Replay one parcel's ARQ against the keyed schedule.

    Returns ``(delivered, attempts)`` where *attempts* is the number of
    attempts a sender makes when every ACK round-trip beats its timeout.
    Under slow ACKs a real sender may fire **more** attempts than this
    before the first ACK lands — but extra attempts can only deliver
    extra (suppressed) copies, so ``delivered`` is timing-independent:
    it is exactly what the cluster produces on the same seed and plan.
    The differential tests walk the tree bottom-up with this function to
    predict every epoch's survivor set in advance.
    """
    delivered = False
    for attempt in range(policy.max_attempts):
        verdict = injector.data_verdict(sender, receiver, edge, uid, attempt)
        if not verdict.lost:
            delivered = True
            if not injector.ack_verdict(sender, receiver, edge, uid, attempt):
                return True, attempt + 1
    return delivered, policy.max_attempts
