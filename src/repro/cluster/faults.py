"""Seeded loss injection at the cluster's stream layer.

TCP never loses bytes, so the cluster injects loss *before* the socket:
when the fault schedule says an attempt is lost, the sender simply does
not write the envelope (and counts the drop) — from the receiver's point
of view this is indistinguishable from a radio swallowing the packet,
which is exactly the PR 3 fault semantics transplanted to real sockets.

Determinism under real concurrency
----------------------------------

:class:`repro.runtime.faults.FaultInjector` draws from one sequential
stream per edge, which is deterministic under the logical-time scheduler
but would make outcomes depend on OS timing here (pipelined epochs
interleave their attempts on shared edges nondeterministically).  The
cluster therefore keys every decision by the full attempt coordinate::

    (sender, receiver, parcel uid, attempt index)

via independent :class:`~repro.utils.rng.DeterministicRandom` streams.
A verdict is a pure function of the seed and that coordinate — *no
matter when or in what order the attempts happen* — so the set of
parcels that ultimately deliver (and hence every epoch's survivor set
and exact SUM) is reproducible run to run and computable in advance by
:func:`parcel_fate`, the oracle the differential tests replay.

Reused from the PR 3 plan: per-edge-class :class:`LinkProfile` loss and
duplication rates.  Latency/jitter are *not* simulated — real sockets
provide real latency — and time-windowed features (bursts, outages) are
rejected because the cluster has no logical clock to window them on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.channel import EdgeClass
from repro.runtime.faults import FaultPlan
from repro.runtime.transport import RetransmitPolicy
from repro.utils.rng import DeterministicRandom

__all__ = ["StreamVerdict", "StreamFaultInjector", "parcel_fate"]


@dataclass(frozen=True)
class StreamVerdict:
    """What the injected fault model does to one envelope write."""

    lost: bool
    #: Copies actually written to the stream (0 lost, 1 normal, 2 duplicated).
    copies: int


class StreamFaultInjector:
    """Deterministic, order-independent fault oracle for stream sends."""

    def __init__(self, plan: FaultPlan, *, seed: int = 0) -> None:
        if plan.bursts:
            raise ConfigurationError(
                "BurstLoss windows are defined over logical time and are not "
                "supported by the TCP cluster; use per-edge LinkProfile loss"
            )
        if plan.outages:
            raise ConfigurationError(
                "NodeOutage windows are defined over logical time and are not "
                "supported by the TCP cluster; model churn via failed_sources"
            )
        self.plan = plan
        self.seed = seed
        #: Verdicts issued per edge class (diagnostics).
        self.verdicts_by_class: dict[EdgeClass, int] = {}

    def _draw(self, kind: str, sender: int, receiver: int, uid: int, attempt: int, n: int) -> list[float]:
        rng = DeterministicRandom(
            self.seed, "cluster", kind, f"{sender}->{receiver}", f"uid:{uid}", f"try:{attempt}"
        )
        return [rng.random() for _ in range(n)]

    def data_verdict(
        self, sender: int, receiver: int, edge: EdgeClass, uid: int, attempt: int
    ) -> StreamVerdict:
        """Fate of data-envelope attempt *attempt* of parcel *uid*."""
        self.verdicts_by_class[edge] = self.verdicts_by_class.get(edge, 0) + 1
        profile = self.plan.profile_for(edge)
        u_loss, u_dup = self._draw("data", sender, receiver, uid, attempt, 2)
        if u_loss < profile.loss_rate:
            return StreamVerdict(lost=True, copies=0)
        copies = 2 if u_dup < profile.duplicate_rate else 1
        return StreamVerdict(lost=False, copies=copies)

    def ack_verdict(
        self, sender: int, receiver: int, edge: EdgeClass, uid: int, attempt: int
    ) -> bool:
        """True when the ACK for (*uid*, *attempt*) is lost on the way back.

        *sender*/*receiver* name the **data** direction (the ACK travels
        receiver→sender); keyed independently of the data draw so a lost
        packet and a lost ACK are uncorrelated, as on a real radio.
        """
        profile = self.plan.profile_for(edge)
        (u_loss,) = self._draw("ack", sender, receiver, uid, attempt, 1)
        return u_loss < profile.loss_rate


def parcel_fate(
    injector: StreamFaultInjector,
    policy: RetransmitPolicy,
    sender: int,
    receiver: int,
    edge: EdgeClass,
    uid: int,
) -> tuple[bool, int]:
    """Replay one parcel's ARQ against the keyed schedule.

    Returns ``(delivered, attempts)`` where *attempts* is the number of
    attempts a sender makes when every ACK round-trip beats its timeout.
    Under slow ACKs a real sender may fire **more** attempts than this
    before the first ACK lands — but extra attempts can only deliver
    extra (suppressed) copies, so ``delivered`` is timing-independent:
    it is exactly what the cluster produces on the same seed and plan.
    The differential tests walk the tree bottom-up with this function to
    predict every epoch's survivor set in advance.
    """
    delivered = False
    for attempt in range(policy.max_attempts):
        verdict = injector.data_verdict(sender, receiver, edge, uid, attempt)
        if not verdict.lost:
            delivered = True
            if not injector.ack_verdict(sender, receiver, edge, uid, attempt):
                return True, attempt + 1
    return delivered, policy.max_attempts
