"""Accounting for the TCP cluster: every frame explained, none silent.

The cluster's headline safety property is **zero silent drops**: every
envelope a sender decided to transmit is accounted for — written to the
wire, deliberately dropped by the seeded fault schedule, suppressed as a
duplicate, counted late, or rejected as undecodable.  The ledger encodes
that as conservation laws over per-:class:`~repro.network.channel.EdgeClass`
counters, checked by :meth:`ClusterTrafficLedger.check_conservation`
at the end of every run (and by the acceptance tests):

* ``attempts == drops_injected + frames_sent - dup_copies`` — each ARQ
  attempt either writes 1 or 2 copies or is swallowed by the schedule;
* ``frames_sent == frames_received`` — TCP loses nothing, so every copy
  written must be observed at the far end;
* ``frames_received == delivered + duplicates_suppressed + late_frames
  + decode_failures`` — every arrival is classified exactly once;
* ``acks_sent == acks_received`` and
  ``frames_received == acks_sent + acks_dropped`` — ACK discipline
  mirrors :class:`~repro.runtime.transport.ReliableTransport`: every
  received copy is acknowledged (unless the schedule drops the ACK).

Byte accounting is double-entry like the channel layer's
:class:`~repro.network.channel.TrafficCounters`: ``psr_bytes`` is the
*measured* inner protocol frame, counted **once per parcel** and
cross-checked against ``codec.framed_size()`` at the send site, while
``envelope_bytes`` counts every byte actually written (retransmissions
and duplicates included).

Determinism split: parcel fates, survivor sets and SUM values are
seed-determined (:mod:`repro.cluster.faults`), but *attempt counts* can
exceed the oracle's under slow ACKs, and latencies are real seconds.
:meth:`ClusterRunMetrics.deterministic_ledger` therefore exposes only
the seed-determined slice (what the differential tests compare), while
:meth:`ClusterRunMetrics.ledger` reports everything measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import SimulationError
from repro.network.channel import EdgeClass
from repro.protocols.base import EvaluationResult
from repro.runtime.metrics import latency_percentile
from repro.runtime.recovery import EpochRecovery, RecoveryLedger

__all__ = ["EdgeCounters", "ClusterTrafficLedger", "ClusterEpochResult", "ClusterRunMetrics"]


@dataclass
class EdgeCounters:
    """Frame/byte accounting for one edge class of the tree."""

    #: ARQ send decisions (first attempts + retransmissions).
    attempts: int = 0
    #: Attempts beyond the first per parcel.
    retransmissions: int = 0
    #: Attempts the fault schedule swallowed (no bytes written).
    drops_injected: int = 0
    #: Extra copies written by duplication verdicts.
    dup_copies: int = 0
    #: Data envelope frames actually written to a socket.
    frames_sent: int = 0
    #: Data envelope frames received and parsed at the far end.
    frames_received: int = 0
    #: First copy of a parcel, handed to the protocol role.
    delivered: int = 0
    #: Copies of an already-delivered parcel (dropped after ACK).
    duplicates_suppressed: int = 0
    #: Copies that arrived after their epoch had closed.
    late_frames: int = 0
    #: Envelopes whose inner protocol frame failed to decode.
    decode_failures: int = 0
    #: Parcels whose sender exhausted its retry budget.
    gave_up: int = 0
    #: ACK frames written / swallowed by the schedule / observed back.
    acks_sent: int = 0
    acks_dropped: int = 0
    acks_received: int = 0
    #: Measured inner protocol frame bytes, once per parcel
    #: (cross-checked against ``codec.framed_size()`` at the send site).
    psr_bytes: int = 0
    #: Bytes of every data envelope actually written (dup/retx included).
    envelope_bytes: int = 0
    #: Bytes of every ACK frame actually written.
    ack_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ClusterTrafficLedger:
    """Per-edge-class :class:`EdgeCounters` plus the conservation checks."""

    def __init__(self) -> None:
        self.by_class: dict[EdgeClass, EdgeCounters] = {}

    def edge(self, edge_class: EdgeClass) -> EdgeCounters:
        counters = self.by_class.get(edge_class)
        if counters is None:
            counters = EdgeCounters()
            self.by_class[edge_class] = counters
        return counters

    def total(self, field_name: str) -> int:
        return sum(getattr(c, field_name) for c in self.by_class.values())

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            edge.value: counters.as_dict()
            for edge, counters in sorted(self.by_class.items(), key=lambda item: item[0].value)
        }

    def check_conservation(self) -> None:
        """Raise :class:`~repro.errors.SimulationError` on any silent drop.

        Called once per run after all connections have drained; every
        law must balance on every edge class independently.
        """
        for edge, c in sorted(self.by_class.items(), key=lambda item: item[0].value):
            laws = [
                (
                    "attempts == drops_injected + frames_sent - dup_copies",
                    c.attempts,
                    c.drops_injected + c.frames_sent - c.dup_copies,
                ),
                ("frames_sent == frames_received", c.frames_sent, c.frames_received),
                (
                    "frames_received == delivered + duplicates_suppressed "
                    "+ late_frames + decode_failures",
                    c.frames_received,
                    c.delivered + c.duplicates_suppressed + c.late_frames + c.decode_failures,
                ),
                (
                    "frames_received == acks_sent + acks_dropped",
                    c.frames_received,
                    c.acks_sent + c.acks_dropped,
                ),
                ("acks_sent == acks_received", c.acks_sent, c.acks_received),
            ]
            for law, lhs, rhs in laws:
                if lhs != rhs:
                    raise SimulationError(
                        f"silent drop on {edge.value}: {law} violated ({lhs} != {rhs}); "
                        f"full counters: {c.as_dict()}"
                    )


@dataclass
class ClusterEpochResult:
    """One epoch as the cluster's querier concluded it."""

    epoch: int
    recovery: EpochRecovery
    result: EvaluationResult | None = None
    #: Security exception class name raised by the querier, if any;
    #: ``"MessageLost"`` when no final PSR reached the querier at all.
    security_failure: str | None = None
    #: Real seconds from epoch launch to the querier's verdict.
    completion_latency: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.result is not None and self.security_failure is None


@dataclass
class ClusterRunMetrics:
    """Everything one cluster run measured."""

    protocol: str
    num_sources: int
    seed: int
    window: int
    epochs: list[ClusterEpochResult] = field(default_factory=list)
    traffic: ClusterTrafficLedger = field(default_factory=ClusterTrafficLedger)
    recovery: RecoveryLedger = field(default_factory=RecoveryLedger)
    #: Real seconds for the whole run (servers up → last epoch settled).
    wall_seconds: float = 0.0

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def acceptance_rate(self) -> float:
        if not self.epochs:
            return 1.0
        return sum(1 for e in self.epochs if e.accepted) / len(self.epochs)

    def delivery_rate(self) -> float:
        attempted = sum(len(e.recovery.attempted) for e in self.epochs)
        survived = sum(len(e.recovery.survivors) for e in self.epochs)
        return survived / attempted if attempted else 1.0

    def epochs_per_second(self) -> float:
        return self.num_epochs / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def frames_per_second(self) -> float:
        frames = self.traffic.total("frames_sent") + self.traffic.total("acks_sent")
        return frames / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def results(self) -> list[EvaluationResult]:
        return [e.result for e in self.epochs if e.result is not None]

    def deterministic_ledger(self) -> dict:
        """The seed-determined slice: equal across reruns and equal to the
        :mod:`repro.cluster.faults` oracle's prediction on the same plan."""
        return {
            "protocol": self.protocol,
            "num_sources": self.num_sources,
            "seed": self.seed,
            "epochs": [
                {
                    "epoch": e.epoch,
                    "value": str(e.result.value) if e.result else None,
                    "verified": e.result.verified if e.result else None,
                    "security_failure": e.security_failure,
                    "survivors": sorted(e.recovery.survivors),
                    "lost": sorted(e.recovery.lost),
                    "converged": e.recovery.converged,
                }
                for e in self.epochs
            ],
        }

    def ledger(self) -> dict:
        """Full JSON-serializable run record (includes measured timing)."""
        latencies = [e.completion_latency for e in self.epochs if e.recovery.converged]
        out = self.deterministic_ledger()
        out.update(
            {
                "window": self.window,
                "num_epochs": self.num_epochs,
                "acceptance_rate": self.acceptance_rate(),
                "delivery_rate": self.delivery_rate(),
                "recovery": self.recovery.as_dict(),
                "traffic": self.traffic.as_dict(),
                "wall_seconds": self.wall_seconds,
                "epochs_per_second": self.epochs_per_second(),
                "frames_per_second": self.frames_per_second(),
                "latency": {
                    "p50": latency_percentile(latencies, 0.50),
                    "p90": latency_percentile(latencies, 0.90),
                    "p99": latency_percentile(latencies, 0.99),
                    "max": max(latencies) if latencies else 0.0,
                },
            }
        )
        return out
