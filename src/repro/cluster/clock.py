"""The cluster's single time source: the event loop's monotonic clock.

Every timeout, deadline and latency measurement in :mod:`repro.cluster`
goes through :class:`ClusterClock` — nothing reads ``time.time()`` or
any other wall clock (sieslint SL002).  The loop clock is *monotonic*
(``loop.time()`` is built on ``time.monotonic``), so deadlines never
jump when the host clock is adjusted, and all backoff *jitter* is drawn
from :class:`~repro.utils.rng.DeterministicRandom` streams owned by the
ARQ — the clock itself holds no randomness.

Real sockets mean real seconds: unlike the logical ticks of
:class:`repro.runtime.events.EventScheduler`, durations here depend on
the host.  The cluster therefore keeps its *outcomes* (which parcels
deliver, which sources survive) deterministic via the per-attempt keyed
fault schedule of :mod:`repro.cluster.faults`, and treats durations as
measurements, never as inputs to any decision a test asserts on.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable
from typing import TypeVar

from repro.errors import SimulationError

__all__ = ["ClusterClock"]

T = TypeVar("T")


class ClusterClock:
    """Monotonic seconds + timer primitives bound to the running loop."""

    def _loop(self) -> asyncio.AbstractEventLoop:
        try:
            return asyncio.get_running_loop()
        except RuntimeError:
            raise SimulationError(
                "ClusterClock used outside a running event loop; cluster "
                "components only tell time while the cluster is running"
            ) from None

    def now(self) -> float:
        """Monotonic seconds (the event loop's clock, never wall time)."""
        return self._loop().time()

    async def sleep(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        await asyncio.sleep(delay)

    def call_at(
        self, when: float, callback: Callable[[], None]
    ) -> asyncio.TimerHandle:
        """Schedule *callback* at absolute loop time *when* (cancellable)."""
        return self._loop().call_at(when, callback)

    async def wait_for(self, awaitable: Awaitable[T], timeout: float) -> T:
        """``asyncio.wait_for`` routed through the wrapper for auditability."""
        return await asyncio.wait_for(awaitable, timeout)
