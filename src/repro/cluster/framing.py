"""Length-delimited stream framing for the 16-byte-header wire frames.

TCP is a byte stream: a single ``read()`` may return half a frame, three
frames, or one frame plus the header of the next.  This module
reassembles the :mod:`repro.wire.frame` format from arbitrary chunk
boundaries:

* :class:`FrameAssembler` — the pure, synchronous core: feed it byte
  chunks, get back complete frames.  Property-tested against splits at
  *every* byte boundary (``tests/cluster/test_framing.py``).
* :class:`FrameReader` — wraps an :class:`asyncio.StreamReader`;
  ``read_frame()`` returns one complete frame, ``None`` on a clean EOF
  at a frame boundary, and raises
  :class:`~repro.errors.FrameTruncatedError` on EOF mid-frame.
* :class:`FrameWriter` — wraps an :class:`asyncio.StreamWriter`; writes
  one validated frame per call and counts bytes.

Malformed input raises *only* the typed
:class:`~repro.errors.WireDecodeError` family — never ``ValueError``,
never ``assert`` (the contract also holds under ``python -O``; see
``tests/test_optimized_mode.py``).  The header is validated as soon as
its 16 bytes are buffered, so a frame announcing an oversized payload is
rejected **before** any payload is accumulated — the max-frame guard
bounds memory per connection at ``HEADER_LEN + max_payload`` bytes.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import FrameLengthError, FrameTruncatedError, WireDecodeError, WireEncodeError
from repro.wire.frame import HEADER_LEN, decode_header

__all__ = ["DEFAULT_MAX_PAYLOAD", "FrameAssembler", "FrameReader", "FrameWriter"]

#: Default per-frame payload cap for cluster streams.  Generous next to
#: any real PSR/envelope (a 64-source SIES envelope is ~350 bytes) while
#: keeping a malicious or corrupted length field from ballooning the
#: reassembly buffer.
DEFAULT_MAX_PAYLOAD = 1 << 20

#: Read granularity of :class:`FrameReader`.
_CHUNK_SIZE = 1 << 16


class FrameAssembler:
    """Incremental reassembly of wire frames from arbitrary byte chunks.

    A hard failure (bad magic, foreign version, oversized payload)
    poisons the assembler: the stream position is no longer trustworthy,
    so every subsequent :meth:`feed` re-raises instead of resynchronizing
    on garbage — exactly how the cluster treats a corrupted connection
    (drop it; the ARQ above recovers).
    """

    def __init__(self, *, max_payload: int = DEFAULT_MAX_PAYLOAD) -> None:
        if max_payload <= 0:
            raise WireEncodeError(f"max_payload must be positive, got {max_payload}")
        self.max_payload = max_payload
        self._buffer = bytearray()
        self._poisoned: WireDecodeError | None = None
        #: Complete frames reassembled so far (monotonic counter).
        self.frames_out = 0
        #: Raw bytes accepted so far (monotonic counter).
        self.bytes_in = 0

    @property
    def buffered(self) -> int:
        """Bytes currently held waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when the stream may end cleanly right now."""
        return not self._buffer and self._poisoned is None

    def _poison(self, exc: WireDecodeError) -> WireDecodeError:
        self._poisoned = exc
        return exc

    def feed(self, data: bytes) -> list[bytes]:
        """Accept *data* and return every frame completed by it, in order."""
        if self._poisoned is not None:
            raise self._poisoned
        self._buffer += data
        self.bytes_in += len(data)
        frames: list[bytes] = []
        while len(self._buffer) >= HEADER_LEN:
            try:
                header = decode_header(bytes(self._buffer[:HEADER_LEN]))
            except WireDecodeError as exc:
                raise self._poison(exc)
            if header.payload_len > self.max_payload:
                raise self._poison(
                    FrameLengthError(
                        f"frame announces a {header.payload_len}-byte payload, over "
                        f"this stream's {self.max_payload}-byte guard"
                    )
                )
            if len(self._buffer) < header.total_len:
                break
            frames.append(bytes(self._buffer[: header.total_len]))
            del self._buffer[: header.total_len]
            self.frames_out += 1
        return frames

    def finish(self) -> None:
        """Declare EOF; raises if the stream ended inside a frame."""
        if self._poisoned is not None:
            raise self._poisoned
        if self._buffer:
            raise self._poison(
                FrameTruncatedError(
                    f"stream ended mid-frame with {len(self._buffer)} buffered bytes"
                )
            )


class FrameReader:
    """One complete frame at a time off an :class:`asyncio.StreamReader`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        *,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self._reader = reader
        self._assembler = FrameAssembler(max_payload=max_payload)
        self._ready: deque[bytes] = deque()
        self._eof = False
        #: Complete frames handed out (monotonic counter).
        self.frames_read = 0

    async def read_frame(self) -> bytes | None:
        """Next complete frame, or ``None`` on clean EOF at a boundary."""
        while not self._ready:
            if self._eof:
                return None
            chunk = await self._reader.read(_CHUNK_SIZE)
            if not chunk:
                self._eof = True
                self._assembler.finish()
                return None
            self._ready.extend(self._assembler.feed(chunk))
        self.frames_read += 1
        return self._ready.popleft()


class FrameWriter:
    """Writes validated frames to an :class:`asyncio.StreamWriter`."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.frames_written = 0
        self.bytes_written = 0

    async def write_frame(self, frame: bytes) -> None:
        """Queue one frame and drain.

        The frame is length-checked against its own header first — a
        sender bug that would desynchronize the receiver's framing must
        fail here, loudly, not at the far end.
        """
        header = decode_header(frame)
        if header.total_len != len(frame):
            raise WireEncodeError(
                f"refusing to write a {len(frame)}-byte frame whose header "
                f"announces {header.total_len} bytes"
            )
        self._writer.write(frame)
        self.frames_written += 1
        self.bytes_written += len(frame)
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()
