"""Per-hop reliable delivery: ACKs, timeouts, retransmission, dedup.

Real WSN MAC layers retransmit unacknowledged frames a bounded number
of times; SIES rides on that and recovers whatever still gets lost via
the reporting-subset mechanism.  This module models the MAC half:

* every application send becomes a :class:`Parcel` with a unique id;
* each physical attempt passes through the legitimate
  :class:`~repro.network.channel.Channel` (so adversary interceptors
  and byte counters see retransmissions exactly like first attempts)
  and then through the :class:`~repro.runtime.faults.FaultInjector`;
* the receiver delivers the first copy to the application, suppresses
  duplicates by parcel id, and always returns a transport-level ACK
  (itself subject to link faults on the reverse direction);
* the sender arms a retransmission timer per attempt — exponential
  backoff with deterministic jitter — and gives up after the retry
  budget, invoking the sender's failure callback.

A sender "giving up" does **not** retract a copy that actually arrived
(the ACK may be the lost half): correctness downstream derives from
what receivers really merged, never from sender-side beliefs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.network.channel import Channel, EdgeClass
from repro.network.messages import DataMessage
from repro.runtime.events import EventScheduler, ScheduledEvent
from repro.runtime.faults import FaultInjector, KeyedFaultInjector
from repro.utils.rng import DeterministicRandom

__all__ = [
    "RetransmitPolicy",
    "Parcel",
    "TransportStats",
    "ReliableTransport",
    "TransportObserver",
]

#: Application delivery callback: (delivered message, manifest).
DeliverFn = Callable[[DataMessage, frozenset[int]], None]
#: Sender-side failure callback once the retry budget is exhausted.
FailFn = Callable[["Parcel"], None]
#: Observability hook: ``(event kind, attributes)`` per transport event.
#: Kinds: ``attempt``, ``drop``, ``deliver``, ``duplicate``, ``ack_lost``,
#: ``give_up``.  Kept as a plain callable so the transport stays below
#: :mod:`repro.obs` in the layering (the adapter lives up there).
TransportObserver = Callable[[str, dict], None]


@dataclass(frozen=True)
class RetransmitPolicy:
    """Retry budget and backoff shape of the per-hop ARQ.

    Attempt ``a`` (0-based) waits ``ack_timeout * backoff**a`` scaled
    by ``1 + uniform(0, jitter)`` before retransmitting — classic
    truncated exponential backoff with jitter to de-synchronize
    colliding retransmitters.
    """

    max_retries: int = 4
    ack_timeout: float = 12.0
    backoff: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParameterError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.ack_timeout <= 0:
            raise ParameterError(f"ack_timeout must be positive, got {self.ack_timeout}")
        if self.backoff < 1.0:
            raise ParameterError(f"backoff must be >= 1, got {self.backoff}")
        if self.jitter < 0:
            raise ParameterError(f"jitter must be non-negative, got {self.jitter}")

    def timeout_for(self, attempt: int, u: float) -> float:
        """Deadline delay before retransmission *attempt+1* (``u ∈ [0,1)``)."""
        return self.ack_timeout * (self.backoff**attempt) * (1.0 + self.jitter * u)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def worst_case_span(self) -> float:
        """Upper bound on time from first send to giving up (no latencies)."""
        return sum(
            self.timeout_for(attempt, 1.0) for attempt in range(self.max_attempts)
        )


@dataclass
class Parcel:
    """One application-level send in flight across a single hop."""

    uid: int
    message: DataMessage
    edge: EdgeClass
    manifest: frozenset[int]
    on_deliver: DeliverFn | None = None
    on_fail: FailFn | None = None
    attempts: int = 0
    acked: bool = False
    failed: bool = False
    timer: ScheduledEvent | None = field(default=None, repr=False)
    #: Cached wire encoding from the first attempt — retransmissions put
    #: byte-identical frames on the air, as a real MAC layer would.
    frame: bytes | None = field(default=None, repr=False)


@dataclass
class TransportStats:
    """Per-edge-class ARQ counters — part of the deterministic ledger."""

    attempts: dict[EdgeClass, int] = field(default_factory=dict)
    retransmissions: dict[EdgeClass, int] = field(default_factory=dict)
    delivered: dict[EdgeClass, int] = field(default_factory=dict)
    duplicates_suppressed: dict[EdgeClass, int] = field(default_factory=dict)
    acks_sent: dict[EdgeClass, int] = field(default_factory=dict)
    acks_lost: dict[EdgeClass, int] = field(default_factory=dict)
    gave_up: dict[EdgeClass, int] = field(default_factory=dict)

    @staticmethod
    def _bump(counter: dict[EdgeClass, int], edge: EdgeClass, by: int = 1) -> None:
        counter[edge] = counter.get(edge, 0) + by

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Canonical JSON-friendly form (keys sorted for run diffing)."""
        return {
            name: {edge.value: count for edge, count in sorted(
                getattr(self, name).items(), key=lambda item: item[0].value
            )}
            for name in (
                "attempts",
                "retransmissions",
                "delivered",
                "duplicates_suppressed",
                "acks_sent",
                "acks_lost",
                "gave_up",
            )
        }


class ReliableTransport:
    """The per-hop ARQ engine shared by every node of the runtime."""

    def __init__(
        self,
        scheduler: EventScheduler,
        injector: FaultInjector,
        channel: Channel,
        policy: RetransmitPolicy,
        *,
        seed: int = 0,
        stats: TransportStats | None = None,
        keyed: KeyedFaultInjector | None = None,
        observer: TransportObserver | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.injector = injector
        self.channel = channel
        self.policy = policy
        self.stats = stats if stats is not None else TransportStats()
        #: When set, link verdicts come from the attempt-coordinate-keyed
        #: oracle (parcel uid = epoch, matching the TCP cluster) instead
        #: of the sequential per-edge streams — same seed, same loss
        #: schedule as the cluster, the basis of cross-substrate trace
        #: comparison.  ``None`` preserves the historical sequential
        #: draws bit for bit.
        self.keyed = keyed
        #: Optional observability hook (see :data:`TransportObserver`).
        self.observer = observer
        self._backoff_rng = DeterministicRandom(seed, "transport", "backoff")
        self._next_uid = 0
        #: Parcel uids already delivered to the application at each receiver.
        self._seen: dict[int, set[int]] = {}

    def send(
        self,
        message: DataMessage,
        edge: EdgeClass,
        manifest: frozenset[int],
        *,
        on_deliver: DeliverFn | None = None,
        on_fail: FailFn | None = None,
    ) -> Parcel:
        """Hand one message to the ARQ; callbacks fire as events."""
        parcel = Parcel(
            uid=self._next_uid,
            message=message,
            edge=edge,
            manifest=manifest,
            on_deliver=on_deliver,
            on_fail=on_fail,
        )
        self._next_uid += 1
        self._attempt(parcel)
        return parcel

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def _attempt(self, parcel: Parcel) -> None:
        attempt_index = parcel.attempts
        parcel.attempts += 1
        TransportStats._bump(self.stats.attempts, parcel.edge)
        if attempt_index > 0:
            TransportStats._bump(self.stats.retransmissions, parcel.edge)

        message = parcel.message
        # The legitimate transmission: byte counters and adversary
        # interceptors apply per physical attempt — retransmissions
        # cost real radio bytes and give the adversary another shot.
        # Encode exactly once per parcel; every attempt replays the
        # identical frame bytes.
        if self.channel.codec is not None and parcel.frame is None:
            parcel.frame = self.channel.codec.encode(message.psr)
        outcome = self.channel.transmit(message, parcel.edge, frame=parcel.frame)
        self._notify("attempt", parcel, attempt_index)
        if outcome is not None:
            if self.keyed is not None:
                kv = self.keyed.data_verdict(
                    message.sender, message.receiver, parcel.edge, message.epoch, attempt_index
                )
                latencies: tuple[float, ...] = ()
                if not kv.lost:
                    latencies = self.keyed.data_latencies(
                        message.sender,
                        message.receiver,
                        parcel.edge,
                        message.epoch,
                        attempt_index,
                        kv.copies,
                    )
            else:
                verdict = self.injector.attempt(
                    message.sender, message.receiver, parcel.edge, self.scheduler.now
                )
                latencies = verdict.latencies
            if not latencies:
                self._notify("drop", parcel, attempt_index, cause="link")
            for latency in latencies:
                self.scheduler.call_later(
                    latency,
                    lambda m=outcome, p=parcel, a=attempt_index: self._arrive(p, m, a),
                )
        else:
            # The channel itself swallowed the frame (adversary drop or
            # decode failure) before the link lottery even ran.
            self._notify("drop", parcel, attempt_index, cause="channel")

        # Arm the retransmission timer regardless of what the link did —
        # the sender cannot observe loss, only missing ACKs.
        if attempt_index < self.policy.max_retries:
            delay = self.policy.timeout_for(attempt_index, self._backoff_rng.random())
            parcel.timer = self.scheduler.call_later(
                delay, lambda p=parcel: self._retransmit(p)
            )
        else:
            delay = self.policy.timeout_for(attempt_index, self._backoff_rng.random())
            parcel.timer = self.scheduler.call_later(
                delay, lambda p=parcel: self._give_up(p)
            )

    def _retransmit(self, parcel: Parcel) -> None:
        if parcel.acked:
            return
        self._attempt(parcel)

    def _give_up(self, parcel: Parcel) -> None:
        if parcel.acked:
            return
        parcel.failed = True
        TransportStats._bump(self.stats.gave_up, parcel.edge)
        self._notify("give_up", parcel, parcel.attempts - 1)
        if parcel.on_fail is not None:
            parcel.on_fail(parcel)

    def _notify(self, kind: str, parcel: Parcel, attempt_index: int, **extra: object) -> None:
        if self.observer is None:
            return
        message = parcel.message
        attrs: dict = {
            "time": self.scheduler.now,
            "epoch": message.epoch,
            "uid": parcel.uid,
            "attempt": attempt_index,
            "edge": parcel.edge.value,
            "sender": message.sender,
            "receiver": message.receiver,
        }
        attrs.update(extra)
        self.observer(kind, attrs)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def _arrive(self, parcel: Parcel, message: DataMessage, attempt_index: int) -> None:
        receiver = message.receiver
        now = self.scheduler.now
        if self.injector.node_down(receiver, now):
            return  # a crashed node neither delivers nor ACKs
        seen = self._seen.setdefault(receiver, set())
        if parcel.uid in seen:
            TransportStats._bump(self.stats.duplicates_suppressed, parcel.edge)
            self._notify("duplicate", parcel, attempt_index)
        else:
            seen.add(parcel.uid)
            TransportStats._bump(self.stats.delivered, parcel.edge)
            self._notify("deliver", parcel, attempt_index)
            if parcel.on_deliver is not None:
                parcel.on_deliver(message, parcel.manifest)
        # The transport ACKs every copy (the sender may have missed the
        # previous ACK); the reverse direction suffers the same faults.
        TransportStats._bump(self.stats.acks_sent, parcel.edge)
        if self.keyed is not None:
            if self.keyed.ack_verdict(
                message.sender, receiver, parcel.edge, message.epoch, attempt_index
            ):
                TransportStats._bump(self.stats.acks_lost, parcel.edge)
                self._notify("ack_lost", parcel, attempt_index)
                return
            delay = self.keyed.ack_latency(
                message.sender, receiver, parcel.edge, message.epoch, attempt_index
            )
        else:
            verdict = self.injector.attempt(receiver, message.sender, parcel.edge, now)
            if verdict.lost:
                TransportStats._bump(self.stats.acks_lost, parcel.edge)
                self._notify("ack_lost", parcel, attempt_index)
                return
            delay = verdict.latencies[0]
        # Multiple ACK copies collapse into the first; extras are no-ops.
        self.scheduler.call_later(delay, lambda p=parcel: self._ack(p))

    def _ack(self, parcel: Parcel) -> None:
        if parcel.acked:
            return
        parcel.acked = True
        if parcel.timer is not None:
            parcel.timer.cancel()
            parcel.timer = None
