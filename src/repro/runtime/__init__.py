"""Fault-injecting discrete-event runtime (deployable-network model).

Where :mod:`repro.network` executes epochs as a lossless function-call
chain, this package drives them through a deterministic event scheduler
over faulty links: seeded per-edge loss/latency/duplication, burst
outages and node churn (:mod:`repro.runtime.faults`), a per-hop
ACK/retransmission layer with exponential backoff
(:mod:`repro.runtime.transport`), aggregator merge deadlines, and a
recovery path that converts undelivered subtrees into the paper's
reported-failure subset so the querier answers the exact SUM over the
survivors (:mod:`repro.runtime.recovery`).

Quick start::

    from repro import SIESProtocol, build_complete_tree
    from repro.datasets import DomainScaledWorkload
    from repro.runtime import FaultPlan, RuntimeConfig, RuntimeSimulator

    protocol = SIESProtocol(num_sources=64, seed=7)
    config = RuntimeConfig(num_epochs=20, plan=FaultPlan.uniform_loss(0.2), seed=7)
    workload = DomainScaledWorkload(64, scale=100, seed=7)
    metrics = RuntimeSimulator(
        protocol, build_complete_tree(64, fanout=4), workload, config
    ).run()
    print(metrics.delivery_rate(), metrics.retransmissions_total())
"""

from repro.runtime.events import EventScheduler, ScheduledEvent
from repro.runtime.faults import (
    BurstLoss,
    FaultInjector,
    FaultPlan,
    LinkProfile,
    LinkVerdict,
    NodeOutage,
)
from repro.runtime.metrics import RuntimeEpochMetrics, RuntimeRunMetrics
from repro.runtime.recovery import EpochRecovery, RecoveryLedger
from repro.runtime.simulator import RuntimeConfig, RuntimeSimulator
from repro.runtime.transport import (
    Parcel,
    ReliableTransport,
    RetransmitPolicy,
    TransportStats,
)

__all__ = [
    "EventScheduler",
    "ScheduledEvent",
    "LinkProfile",
    "BurstLoss",
    "NodeOutage",
    "FaultPlan",
    "LinkVerdict",
    "FaultInjector",
    "RetransmitPolicy",
    "Parcel",
    "TransportStats",
    "ReliableTransport",
    "EpochRecovery",
    "RecoveryLedger",
    "RuntimeEpochMetrics",
    "RuntimeRunMetrics",
    "RuntimeConfig",
    "RuntimeSimulator",
]
