"""Measurement containers for the fault-injecting runtime.

Unlike :class:`~repro.network.metrics.RunMetrics`, nothing here carries
wall-clock seconds: every field is a function of the seed and the
configuration, so two runs with identical inputs produce identical
:meth:`RuntimeRunMetrics.ledger` dicts — the determinism contract the
acceptance tests compare byte for byte.

Latency fields are *logical* (scheduler time units): epoch completion
latency is the span from the epoch's start event to the querier's
evaluation of its final PSR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.channel import TrafficCounters
from repro.protocols.base import EvaluationResult, OpCounter
from repro.runtime.recovery import EpochRecovery, RecoveryLedger
from repro.runtime.transport import TransportStats

__all__ = ["RuntimeEpochMetrics", "RuntimeRunMetrics", "latency_percentile"]


def latency_percentile(samples: list[float], fraction: float) -> float:
    """True nearest-rank percentile of *samples* (0 when empty).

    The nearest-rank definition: the p-th percentile of ``n`` ordered
    samples is the ``ceil(p * n)``-th smallest (1-based), so the p50 of
    ``[1, 2, 3, 4]`` is 2, not 3.  ``fraction <= 0`` returns the
    minimum, ``fraction >= 1`` the maximum.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class RuntimeEpochMetrics:
    """One epoch through the event runtime."""

    epoch: int
    recovery: EpochRecovery
    result: EvaluationResult | None = None
    #: Security exception class name raised by the querier, if any;
    #: ``"MessageLost"`` when no final PSR survived the network.
    security_failure: str | None = None
    #: Logical time from epoch start to evaluation (0 if unrecovered).
    completion_latency: float = 0.0
    #: Copies of this epoch's traffic that arrived after a deadline.
    late_arrivals: int = 0

    @property
    def accepted(self) -> bool:
        return self.result is not None and self.security_failure is None


@dataclass
class RuntimeRunMetrics:
    """Everything one runtime run measured (fully deterministic)."""

    protocol: str
    num_sources: int
    seed: int
    epochs: list[RuntimeEpochMetrics] = field(default_factory=list)
    transport: TransportStats = field(default_factory=TransportStats)
    recovery: RecoveryLedger = field(default_factory=RecoveryLedger)
    traffic: TrafficCounters = field(default_factory=TrafficCounters)
    source_ops: OpCounter = field(default_factory=OpCounter)
    aggregator_ops: OpCounter = field(default_factory=OpCounter)
    querier_ops: OpCounter = field(default_factory=OpCounter)
    events_processed: int = 0

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    # ------------------------------------------------------------------
    # Headline rates
    # ------------------------------------------------------------------

    def delivery_rate(self) -> float:
        """Fraction of attempted source contributions that survived."""
        attempted = sum(len(e.recovery.attempted) for e in self.epochs)
        survived = sum(len(e.recovery.survivors) for e in self.epochs)
        return survived / attempted if attempted else 1.0

    def acceptance_rate(self) -> float:
        """Fraction of epochs whose exact SUM the querier accepted."""
        if not self.epochs:
            return 1.0
        return sum(1 for e in self.epochs if e.accepted) / len(self.epochs)

    def completion_latencies(self) -> list[float]:
        return [e.completion_latency for e in self.epochs if e.recovery.converged]

    def retransmissions_total(self) -> int:
        return sum(self.transport.retransmissions.values())

    def security_failures(self) -> list[tuple[int, str]]:
        return [(e.epoch, e.security_failure) for e in self.epochs if e.security_failure]

    def results(self) -> list[EvaluationResult]:
        return [e.result for e in self.epochs if e.result is not None]

    # ------------------------------------------------------------------
    # The determinism contract
    # ------------------------------------------------------------------

    def ledger(self) -> dict:
        """Canonical, JSON-serializable record of the whole run.

        Contains *only* seed-determined quantities — no wall-clock, no
        object ids — so two runs with the same configuration and seed
        must produce equal ledgers (asserted by the acceptance tests).
        """
        latencies = self.completion_latencies()
        return {
            "protocol": self.protocol,
            "num_sources": self.num_sources,
            "seed": self.seed,
            "num_epochs": self.num_epochs,
            "delivery_rate": self.delivery_rate(),
            "acceptance_rate": self.acceptance_rate(),
            "events_processed": self.events_processed,
            "transport": self.transport.as_dict(),
            "recovery": self.recovery.as_dict(),
            "traffic_bytes": {
                edge.value: count
                for edge, count in sorted(
                    self.traffic.bytes_by_class.items(), key=lambda item: item[0].value
                )
            },
            "traffic_messages": {
                edge.value: count
                for edge, count in sorted(
                    self.traffic.messages_by_class.items(), key=lambda item: item[0].value
                )
            },
            "ops": {
                "source": dict(sorted(self.source_ops.counts.items())),
                "aggregator": dict(sorted(self.aggregator_ops.counts.items())),
                "querier": dict(sorted(self.querier_ops.counts.items())),
            },
            "latency": {
                "p50": latency_percentile(latencies, 0.50),
                "p90": latency_percentile(latencies, 0.90),
                "p99": latency_percentile(latencies, 0.99),
                "max": max(latencies) if latencies else 0.0,
            },
            "epochs": [
                {
                    "epoch": e.epoch,
                    "value": str(e.result.value) if e.result else None,
                    "verified": e.result.verified if e.result else None,
                    "security_failure": e.security_failure,
                    "survivors": sorted(e.recovery.survivors),
                    "lost": sorted(e.recovery.lost),
                    "converged": e.recovery.converged,
                    "completion_latency": e.completion_latency,
                    "late_arrivals": e.late_arrivals,
                }
                for e in self.epochs
            ],
        }
