"""Seeded link and node fault models for the event runtime.

A :class:`FaultPlan` declares *what can go wrong*: per-edge-class link
profiles (loss rate, latency, jitter, duplication), time-windowed burst
losses, and node crash/recover churn.  A :class:`FaultInjector` turns
the plan into deterministic per-transmission verdicts.

Determinism: every edge gets its own
:class:`~repro.utils.rng.DeterministicRandom` child stream keyed by the
``sender->receiver`` pair, and every :meth:`FaultInjector.attempt` call
draws a *fixed* number of variates from that stream regardless of the
verdict, so a changed loss outcome on one attempt never perturbs the
latency of the next.  Two runs with the same plan and seed therefore
produce identical fault sequences — the property the acceptance tests
assert by comparing whole metrics ledgers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ParameterError
from repro.network.channel import EdgeClass
from repro.utils.rng import DeterministicRandom

__all__ = [
    "LinkProfile",
    "BurstLoss",
    "NodeOutage",
    "FaultPlan",
    "LinkVerdict",
    "FaultInjector",
    "KeyedVerdict",
    "KeyedFaultInjector",
]


def _check_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class LinkProfile:
    """Steady-state behaviour of one radio link (or edge class).

    ``latency`` is the base one-way propagation in logical time units;
    each transmission adds ``uniform(0, jitter)`` on top, which also
    models reordering — two packets sent back-to-back may arrive
    swapped whenever the jitter window exceeds the send gap.
    """

    loss_rate: float = 0.0
    latency: float = 1.0
    jitter: float = 0.5
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("loss_rate", self.loss_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        if self.latency < 0 or self.jitter < 0:
            raise ParameterError("latency and jitter must be non-negative")


@dataclass(frozen=True)
class BurstLoss:
    """Elevated loss on a time window — models interference bursts.

    During ``[start, end)`` the effective loss rate on matching edges
    becomes ``1 - (1-base)*(1-loss_rate)`` (independent loss sources).
    """

    start: float
    end: float
    loss_rate: float = 1.0
    edge_class: EdgeClass | None = None

    def __post_init__(self) -> None:
        _check_rate("loss_rate", self.loss_rate)
        if self.end <= self.start:
            raise ParameterError(f"burst window [{self.start}, {self.end}) is empty")

    def active(self, now: float, edge: EdgeClass) -> bool:
        if self.edge_class is not None and edge is not self.edge_class:
            return False
        return self.start <= now < self.end


@dataclass(frozen=True)
class NodeOutage:
    """A node is down (neither receives, ACKs, nor transmits) in ``[start, end)``."""

    node_id: int
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ParameterError(f"outage window [{self.start}, {self.end}) is empty")

    def down(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class FaultPlan:
    """The complete fault configuration of one runtime run."""

    #: Profile used for edge classes without an explicit override.
    default_profile: LinkProfile = field(default_factory=LinkProfile)
    #: Per-edge-class overrides (e.g. a lossier source tier).
    profiles: dict[EdgeClass, LinkProfile] = field(default_factory=dict)
    bursts: tuple[BurstLoss, ...] = ()
    outages: tuple[NodeOutage, ...] = ()

    def profile_for(self, edge: EdgeClass) -> LinkProfile:
        return self.profiles.get(edge, self.default_profile)

    @classmethod
    def lossless(cls) -> "FaultPlan":
        """The degenerate plan: instant, perfect links (overhead baseline)."""
        return cls(default_profile=LinkProfile(loss_rate=0.0, latency=0.0, jitter=0.0))

    @classmethod
    def uniform_loss(cls, loss_rate: float, **profile_kwargs: float) -> "FaultPlan":
        """Every edge class loses packets independently at *loss_rate*."""
        return cls(default_profile=LinkProfile(loss_rate=loss_rate, **profile_kwargs))


@dataclass(frozen=True)
class LinkVerdict:
    """What the channel did to one physical transmission attempt.

    ``latencies`` holds one arrival delay per surviving copy — empty
    when the packet was lost, two entries when it was duplicated.
    """

    lost: bool
    latencies: tuple[float, ...]

    @property
    def copies(self) -> int:
        return len(self.latencies)


class FaultInjector:
    """Deterministic oracle answering "what happens to this transmission?"."""

    def __init__(self, plan: FaultPlan, *, seed: int = 0) -> None:
        self.plan = plan
        self._seed = seed
        self._streams: dict[tuple[int, int], DeterministicRandom] = {}
        #: Transmission attempts adjudicated, per edge class (diagnostics).
        self.attempts_by_class: dict[EdgeClass, int] = {}

    def _stream(self, sender: int, receiver: int) -> DeterministicRandom:
        key = (sender, receiver)
        stream = self._streams.get(key)
        if stream is None:
            stream = DeterministicRandom(self._seed, "link", f"{sender}->{receiver}")
            self._streams[key] = stream
        return stream

    def node_down(self, node_id: int, now: float) -> bool:
        """True when the node is inside any of its outage windows."""
        return any(o.node_id == node_id and o.down(now) for o in self.plan.outages)

    def effective_loss_rate(self, edge: EdgeClass, now: float) -> float:
        """Steady-state loss combined with every active burst."""
        survive = 1.0 - self.plan.profile_for(edge).loss_rate
        for burst in self.plan.bursts:
            if burst.active(now, edge):
                survive *= 1.0 - burst.loss_rate
        return 1.0 - survive

    def attempt(
        self, sender: int, receiver: int, edge: EdgeClass, now: float
    ) -> LinkVerdict:
        """Adjudicate one physical transmission at logical time *now*.

        Exactly four variates are drawn per call (loss, latency,
        duplication, duplicate latency) so verdict outcomes never shift
        the stream for later attempts on the same edge.
        """
        self.attempts_by_class[edge] = self.attempts_by_class.get(edge, 0) + 1
        profile = self.plan.profile_for(edge)
        rng = self._stream(sender, receiver)
        u_loss = rng.random()
        u_latency = rng.random()
        u_dup = rng.random()
        u_dup_latency = rng.random()

        if self.node_down(receiver, now):
            return LinkVerdict(lost=True, latencies=())
        if u_loss < self.effective_loss_rate(edge, now):
            return LinkVerdict(lost=True, latencies=())

        latencies = [profile.latency + u_latency * profile.jitter]
        if u_dup < profile.duplicate_rate:
            latencies.append(profile.latency + u_dup_latency * profile.jitter)
        return LinkVerdict(lost=False, latencies=tuple(latencies))


@dataclass(frozen=True)
class KeyedVerdict:
    """What a keyed fault schedule does to one transmission attempt."""

    lost: bool
    #: Copies that survive the link (0 lost, 1 normal, 2 duplicated).
    copies: int


class KeyedFaultInjector:
    """Order-independent fault oracle keyed by the attempt coordinate.

    Where :class:`FaultInjector` draws from one *sequential* stream per
    edge (deterministic only when attempts are adjudicated in a fixed
    order), this oracle keys every decision by the full coordinate
    ``(sender, receiver, parcel uid, attempt index)`` through
    independent :class:`~repro.utils.rng.DeterministicRandom` streams.
    A verdict is a pure function of the seed and the coordinate — no
    matter when, in what order, or how often it is queried — which is
    what lets the TCP cluster stay reproducible under real concurrency
    and what lets the runtime replay the *same* loss schedule as the
    cluster for cross-substrate trace comparison
    (``RuntimeConfig.keyed_faults``).

    The stream labels deliberately keep the literal ``"cluster"``
    namespace the cluster substrate introduced: both substrates must
    draw identical schedules from one seed, and re-labelling would
    silently re-randomize every pinned cluster test.

    Time-windowed features (:class:`BurstLoss`, :class:`NodeOutage`)
    are rejected — a keyed schedule has no notion of *when* an attempt
    happens, which is exactly the point.
    """

    def __init__(self, plan: FaultPlan, *, seed: int = 0) -> None:
        if plan.bursts:
            raise ConfigurationError(
                "BurstLoss windows are defined over logical time and cannot be "
                "keyed by attempt coordinate; use per-edge LinkProfile loss"
            )
        if plan.outages:
            raise ConfigurationError(
                "NodeOutage windows are defined over logical time and cannot be "
                "keyed by attempt coordinate; model churn via failed_sources"
            )
        self.plan = plan
        self.seed = seed
        #: Verdicts issued per edge class (diagnostics).
        self.verdicts_by_class: dict[EdgeClass, int] = {}

    def _draw(
        self, kind: str, sender: int, receiver: int, uid: int, attempt: int, n: int
    ) -> list[float]:
        rng = DeterministicRandom(
            self.seed, "cluster", kind, f"{sender}->{receiver}", f"uid:{uid}", f"try:{attempt}"
        )
        return [rng.random() for _ in range(n)]

    def data_verdict(
        self, sender: int, receiver: int, edge: EdgeClass, uid: int, attempt: int
    ) -> KeyedVerdict:
        """Fate of data attempt *attempt* of parcel *uid*."""
        self.verdicts_by_class[edge] = self.verdicts_by_class.get(edge, 0) + 1
        profile = self.plan.profile_for(edge)
        u_loss, u_dup = self._draw("data", sender, receiver, uid, attempt, 2)
        if u_loss < profile.loss_rate:
            return KeyedVerdict(lost=True, copies=0)
        copies = 2 if u_dup < profile.duplicate_rate else 1
        return KeyedVerdict(lost=False, copies=copies)

    def ack_verdict(
        self, sender: int, receiver: int, edge: EdgeClass, uid: int, attempt: int
    ) -> bool:
        """True when the ACK for (*uid*, *attempt*) is lost on the way back.

        *sender*/*receiver* name the **data** direction (the ACK travels
        receiver→sender); keyed independently of the data draw so a lost
        packet and a lost ACK are uncorrelated, as on a real radio.
        """
        profile = self.plan.profile_for(edge)
        (u_loss,) = self._draw("ack", sender, receiver, uid, attempt, 1)
        return u_loss < profile.loss_rate

    def data_latencies(
        self, sender: int, receiver: int, edge: EdgeClass, uid: int, attempt: int, copies: int
    ) -> tuple[float, ...]:
        """Arrival delays for *copies* surviving copies (logical time).

        Drawn from a keyed stream of its own (``"lat"``) so substrates
        that do not simulate latency — the TCP cluster has real sockets
        for that — consume nothing from the loss/duplication streams.
        """
        profile = self.plan.profile_for(edge)
        draws = self._draw("lat", sender, receiver, uid, attempt, copies)
        return tuple(profile.latency + u * profile.jitter for u in draws)

    def ack_latency(
        self, sender: int, receiver: int, edge: EdgeClass, uid: int, attempt: int
    ) -> float:
        """Return-trip delay of a surviving ACK (logical time)."""
        profile = self.plan.profile_for(edge)
        (u,) = self._draw("acklat", sender, receiver, uid, attempt, 1)
        return profile.latency + u * profile.jitter
