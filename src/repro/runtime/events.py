"""Deterministic discrete-event scheduler for the fault-injecting runtime.

The runtime must replay bit-identically run-to-run — acceptance tests
compare whole metrics ledgers across runs — so time here is *logical*:
a monotonically increasing float advanced only by event processing,
never by wall clocks.  Determinism rests on two invariants:

* events fire in ``(time, sequence)`` order, where the sequence number
  is assigned at scheduling time — ties are broken by scheduling order,
  which is itself deterministic;
* no component reads ``time.time()``/``random`` globals; all randomness
  flows through :class:`~repro.utils.rng.DeterministicRandom` streams
  owned by the fault injector and transport.

The scheduler is intentionally minimal (a binary heap and a cancel
flag): protocols and transports build timers, timeouts and deadlines
out of :meth:`EventScheduler.call_at` / :meth:`call_later` alone.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["EventScheduler", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """A pending callback; comparable by ``(time, seq)`` for the heap."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; the scheduler skips it on pop."""
        self.cancelled = True


class EventScheduler:
    """A logical-clock event loop (smallest ``(time, seq)`` first)."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[ScheduledEvent] = []
        self._processed = 0

    @property
    def now(self) -> float:
        """Current logical time (advances only when events fire)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def call_at(self, when: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule *action* at absolute logical time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now={self._now}"
            )
        event = ScheduledEvent(time=when, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule *action* after a non-negative logical *delay*."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, action)

    def run(self, *, until: Callable[[], bool] | None = None, max_events: int = 10_000_000) -> None:
        """Process events in order until the heap drains (or *until* is true).

        *max_events* is a runaway backstop: a transport bug that
        reschedules forever should fail loudly, not hang the suite.
        """
        processed = 0
        while self._heap:
            if until is not None and until():
                return
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"event budget exhausted after {max_events} events — "
                    "likely a rescheduling loop in a timer"
                )
