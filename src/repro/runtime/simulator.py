"""The fault-injecting event runtime driving epochs end to end.

:class:`RuntimeSimulator` executes the same aggregation process as
:class:`~repro.network.simulator.NetworkSimulator` — initialization at
the sources, bottom-up merging, evaluation at the querier — but over a
*faulty network* instead of a lossless function call chain:

* every hop goes through the per-hop ARQ of
  :mod:`repro.runtime.transport` (ACKs, timeouts, bounded
  retransmission with exponential backoff) and the seeded
  :class:`~repro.runtime.faults.FaultInjector`;
* aggregators **hold-and-wait**: each epoch they merge whatever
  children delivered by their deadline (``hold_time ×`` node height) —
  or immediately once every expected child arrived — and forward the
  merged PSR together with the manifest of contributing source ids;
* the querier converts an incomplete manifest into the paper's
  reported-failure subset (Section IV-B) and evaluates the exact SUM
  over the survivors — graceful degradation instead of a spurious
  :class:`~repro.errors.IntegrityError`.

The runtime reuses the existing role objects and
:class:`~repro.network.channel.Channel` unchanged, so every adversary
interceptor from :mod:`repro.attacks` works here too — and sees
retransmissions as extra attack opportunities, exactly like a real
radio.  All scheduling is logical-clock based and seeded; see
:meth:`RuntimeRunMetrics.ledger` for the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SecurityError, SimulationError
from repro.network.channel import Channel, EdgeClass
from repro.network.messages import DataMessage
from repro.network.simulator import QUERIER_NODE_ID, Workload
from repro.network.topology import AggregationTree
from repro.protocols.base import (
    OpCounter,
    PartialStateRecord,
    SecureAggregationProtocol,
)
from repro.runtime.events import EventScheduler
from repro.runtime.faults import FaultInjector, FaultPlan, KeyedFaultInjector
from repro.runtime.metrics import RuntimeEpochMetrics, RuntimeRunMetrics
from repro.runtime.recovery import EpochRecovery, expected_contributions
from repro.runtime.transport import (
    ReliableTransport,
    RetransmitPolicy,
    TransportObserver,
    TransportStats,
)
from repro.utils.validation import check_positive_int

__all__ = ["RuntimeConfig", "RuntimeSimulator"]


@dataclass
class RuntimeConfig:
    """Knobs for one event-runtime run."""

    num_epochs: int = 20
    #: First epoch index (epoch 0 is reserved for setup, as elsewhere).
    start_epoch: int = 1
    #: Logical time between consecutive epoch starts; epochs pipeline
    #: freely when smaller than an epoch's end-to-end span.
    epoch_interval: float = 500.0
    #: Merge-deadline spacing per tree level: an aggregator at height h
    #: merges what arrived by ``epoch_start + hold_time * h``.
    hold_time: float = 250.0
    #: Extra wait at the querier beyond the root's deadline before the
    #: epoch is declared unrecovered.
    querier_slack: float = 250.0
    #: Per-hop ARQ shape (see :class:`RetransmitPolicy`).
    policy: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    #: What the network does to packets (see :class:`FaultPlan`).
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Seed for every runtime randomness stream (links, backoff jitter).
    seed: int = 0
    #: When False, querier evaluation is skipped (pure transport runs).
    evaluate: bool = True
    #: Source ids that are known-failed up front (never report).
    failed_sources: frozenset[int] = field(default_factory=frozenset)
    #: When True, link verdicts come from the attempt-coordinate-keyed
    #: oracle the TCP cluster uses (uid = epoch) instead of the
    #: historical sequential per-edge streams: same seed + plan then
    #: yields the *same* loss schedule as the cluster, making traces
    #: comparable across substrates.  Keyed plans reject bursts/outages.
    keyed_faults: bool = False

    def __post_init__(self) -> None:
        check_positive_int("num_epochs", self.num_epochs)
        if self.epoch_interval <= 0 or self.hold_time <= 0 or self.querier_slack < 0:
            raise SimulationError(
                "epoch_interval and hold_time must be positive, querier_slack non-negative"
            )


class _EpochState:
    """Mutable per-epoch bookkeeping while the epoch is in flight."""

    __slots__ = (
        "epoch",
        "start_time",
        "attempted",
        "pre_failed",
        "inboxes",
        "merged",
        "expected",
        "finalized",
        "late_arrivals",
    )

    def __init__(
        self,
        epoch: int,
        start_time: float,
        attempted: frozenset[int],
        pre_failed: frozenset[int],
        expected: dict[int, int],
    ) -> None:
        self.epoch = epoch
        self.start_time = start_time
        self.attempted = attempted
        self.pre_failed = pre_failed
        #: aggregator id -> [(psr, manifest), ...] in arrival order.
        self.inboxes: dict[int, list[tuple[PartialStateRecord, frozenset[int]]]] = {}
        self.merged: set[int] = set()
        #: aggregator id -> number of child contributions that may arrive.
        self.expected = expected
        self.finalized = False
        self.late_arrivals = 0


class RuntimeSimulator:
    """Runs a protocol over a lossy, latency-bearing, retransmitting network."""

    def __init__(
        self,
        protocol: SecureAggregationProtocol,
        tree: AggregationTree,
        workload: Workload,
        config: RuntimeConfig | None = None,
    ) -> None:
        if tree.num_sources != protocol.num_sources:
            raise SimulationError(
                f"topology has {tree.num_sources} sources but protocol was set up "
                f"for {protocol.num_sources}"
            )
        self.protocol = protocol
        self.tree = tree
        self.workload = workload
        self.config = config or RuntimeConfig()
        # Codec-backed channel: the ARQ below transmits real byte frames
        # (encoded once per parcel, retransmitted byte-identically).
        self.channel = Channel(codec=protocol.wire_codec())
        self.scheduler = EventScheduler()
        self.injector = FaultInjector(self.config.plan, seed=self.config.seed)
        self.keyed_injector = (
            KeyedFaultInjector(self.config.plan, seed=self.config.seed)
            if self.config.keyed_faults
            else None
        )
        self.transport = ReliableTransport(
            self.scheduler,
            self.injector,
            self.channel,
            self.config.policy,
            seed=self.config.seed,
            stats=TransportStats(),
            keyed=self.keyed_injector,
        )

        self.source_ops = OpCounter()
        self.aggregator_ops = OpCounter()
        self.querier_ops = OpCounter()
        self._sources = {
            sid: protocol.create_source(sid, ops=self.source_ops) for sid in tree.source_ids
        }
        self._aggregators = {
            aid: protocol.create_aggregator(ops=self.aggregator_ops)
            for aid in tree.aggregator_ids
        }
        self._querier = protocol.create_querier(ops=self.querier_ops)
        self._heights = self._node_heights()
        self._merge_schedule = tree.bottom_up_aggregators()
        self._states: dict[int, _EpochState] = {}
        self._metrics: RuntimeRunMetrics | None = None
        self._ran = False

    # ------------------------------------------------------------------
    # Topology precomputation
    # ------------------------------------------------------------------

    def _node_heights(self) -> dict[int, int]:
        """Height of every node (sources 0, aggregators 1 + max child)."""
        heights: dict[int, int] = {sid: 0 for sid in self.tree.source_ids}
        for aid in self.tree.bottom_up_aggregators():
            heights[aid] = 1 + max(heights[c] for c in self.tree.children(aid))
        return heights

    def _expected_contributions(self, attempted: frozenset[int]) -> dict[int, int]:
        """Per-aggregator early-merge counts (shared with the TCP cluster)."""
        return expected_contributions(self.tree, attempted)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def set_observer(self, observer: TransportObserver | None) -> None:
        """Install an observability hook over the whole runtime.

        The hook receives every transport event (``attempt``, ``drop``,
        ``deliver``, ``duplicate``, ``ack_lost``, ``give_up``) plus the
        simulator-level ``late`` events for copies that arrived after
        their receiver's merge deadline.  :mod:`repro.obs` builds the
        unified trace from exactly this stream.
        """
        self.transport.observer = observer

    def _edge_of(self, sender: int, receiver: int) -> EdgeClass:
        if receiver == QUERIER_NODE_ID:
            return EdgeClass.AGGREGATOR_TO_QUERIER
        if sender in self._sources:
            return EdgeClass.SOURCE_TO_AGGREGATOR
        return EdgeClass.AGGREGATOR_TO_AGGREGATOR

    def _notify_late(self, epoch: int, message: DataMessage) -> None:
        observer = self.transport.observer
        if observer is not None:
            observer(
                "late",
                {
                    "time": self.scheduler.now,
                    "epoch": epoch,
                    "uid": None,
                    "attempt": None,
                    "edge": self._edge_of(message.sender, message.receiver).value,
                    "sender": message.sender,
                    "receiver": message.receiver,
                },
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, num_epochs: int | None = None) -> RuntimeRunMetrics:
        """Execute the configured epochs through the event loop.

        One-shot: transports, fault streams and dedup state are bound
        to this run, so build a fresh :class:`RuntimeSimulator` for a
        fresh run (the determinism tests rely on exactly that).
        """
        if self._ran:
            raise SimulationError(
                "RuntimeSimulator.run is one-shot; construct a new simulator "
                "for an independent (and reproducible) run"
            )
        self._ran = True
        epochs = num_epochs if num_epochs is not None else self.config.num_epochs
        check_positive_int("num_epochs", epochs)

        self._metrics = RuntimeRunMetrics(
            protocol=self.protocol.name,
            num_sources=self.tree.num_sources,
            seed=self.config.seed,
        )
        for offset in range(epochs):
            epoch = self.config.start_epoch + offset
            self.scheduler.call_at(
                offset * self.config.epoch_interval,
                lambda e=epoch: self._start_epoch(e),
            )
        self.scheduler.run()

        metrics = self._metrics
        metrics.epochs.sort(key=lambda em: em.epoch)
        for em in metrics.epochs:
            # Stragglers can arrive (and be classified late) after an
            # epoch finalized; fold in the final tally.
            em.late_arrivals = self._states[em.epoch].late_arrivals
        metrics.transport = self.transport.stats
        metrics.traffic = self.channel.counters
        metrics.source_ops = self.source_ops
        metrics.aggregator_ops = self.aggregator_ops
        metrics.querier_ops = self.querier_ops
        metrics.events_processed = self.scheduler.events_processed
        for em in metrics.epochs:
            metrics.recovery.record(em.recovery)
        return metrics

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def _start_epoch(self, epoch: int) -> None:
        now = self.scheduler.now
        attempted: list[int] = []
        pre_failed: list[int] = []
        for sid in self.tree.source_ids:
            if sid in self.config.failed_sources or self.injector.node_down(sid, now):
                pre_failed.append(sid)
            else:
                attempted.append(sid)
        attempted_set = frozenset(attempted)
        state = _EpochState(
            epoch,
            now,
            attempted_set,
            frozenset(pre_failed),
            self._expected_contributions(attempted_set),
        )
        self._states[epoch] = state

        for sid in attempted:
            value = self.workload(sid, epoch)
            psr = self._sources[sid].initialize(epoch, value)
            parent = self.tree.parent(sid)
            if parent is None:
                raise SimulationError(f"source {sid} has no parent aggregator")
            self.transport.send(
                DataMessage(sid, parent, epoch, psr),
                EdgeClass.SOURCE_TO_AGGREGATOR,
                frozenset((sid,)),
                on_deliver=self._make_deliver(epoch),
            )

        for aid in self._merge_schedule:
            self.scheduler.call_at(
                now + self.config.hold_time * self._heights[aid],
                lambda a=aid, e=epoch: self._merge(e, a),
            )
        querier_deadline = (
            now
            + self.config.hold_time * (self._heights[self.tree.root_id] + 1)
            + self.config.querier_slack
        )
        self.scheduler.call_at(querier_deadline, lambda e=epoch: self._finalize_lost(e))

    def _make_deliver(self, epoch: int):
        def deliver(message: DataMessage, manifest: frozenset[int]) -> None:
            self._on_delivery(epoch, message, manifest)

        return deliver

    def _on_delivery(
        self, epoch: int, message: DataMessage, manifest: frozenset[int]
    ) -> None:
        state = self._states[epoch]
        if message.receiver == QUERIER_NODE_ID:
            self._on_final(state, message, manifest)
            return
        aid = message.receiver
        if aid in state.merged:
            state.late_arrivals += 1
            self._notify_late(epoch, message)
            return
        inbox = state.inboxes.setdefault(aid, [])
        inbox.append((message.psr, manifest))
        # Early merge: everything that can still arrive has arrived.
        if len(inbox) >= state.expected.get(aid, 0):
            self._merge(epoch, aid)

    def _merge(self, epoch: int, aid: int) -> None:
        state = self._states[epoch]
        if aid in state.merged:
            return  # early merge already ran; the deadline event no-ops
        state.merged.add(aid)
        if self.injector.node_down(aid, self.scheduler.now):
            return  # a crashed aggregator forwards nothing; subtree is lost
        received = state.inboxes.pop(aid, [])
        if not received:
            return  # whole subtree failed/undelivered this epoch
        psrs = [psr for psr, _ in received]
        manifest = frozenset().union(*(man for _, man in received))
        merged = self._aggregators[aid].merge(epoch, psrs)
        parent = self.tree.parent(aid)
        if parent is None:
            merged = self._aggregators[aid].finalize_for_querier(merged)
            receiver, edge = QUERIER_NODE_ID, EdgeClass.AGGREGATOR_TO_QUERIER
        else:
            receiver, edge = parent, EdgeClass.AGGREGATOR_TO_AGGREGATOR
        self.transport.send(
            DataMessage(aid, receiver, epoch, merged),
            edge,
            manifest,
            on_deliver=self._make_deliver(epoch),
        )

    # ------------------------------------------------------------------
    # Querier side: evaluation and recovery
    # ------------------------------------------------------------------

    def _on_final(
        self, state: _EpochState, message: DataMessage, manifest: frozenset[int]
    ) -> None:
        if state.finalized:
            state.late_arrivals += 1
            self._notify_late(state.epoch, message)
            return
        state.finalized = True
        recovery = EpochRecovery.from_final_manifest(
            state.epoch,
            attempted=state.attempted,
            manifest=manifest,
            pre_failed=state.pre_failed,
        )
        em = RuntimeEpochMetrics(
            epoch=state.epoch,
            recovery=recovery,
            completion_latency=self.scheduler.now - state.start_time,
            late_arrivals=state.late_arrivals,
        )
        if self.config.evaluate:
            subset = recovery.reporting_subset(self.tree.num_sources)
            try:
                em.result = self._querier.evaluate(
                    state.epoch, message.psr, reporting_sources=subset
                )
            except SecurityError as exc:
                em.security_failure = type(exc).__name__
        if self._metrics is None:
            raise SimulationError("epoch finalized outside an active run()")
        self._metrics.epochs.append(em)

    def _finalize_lost(self, epoch: int) -> None:
        """Querier deadline: nothing arrived — record the epoch as lost.

        ``MessageLost`` (sources reported but the network swallowed
        every path to the querier) is kept distinct from ``NoResult``
        (nothing was ever sent, e.g. all sources pre-failed), matching
        :class:`~repro.network.simulator.NetworkSimulator` semantics.
        """
        state = self._states[epoch]
        if state.finalized:
            return  # the happy path already evaluated this epoch
        state.finalized = True
        recovery = EpochRecovery(
            epoch=epoch,
            attempted=state.attempted,
            survivors=frozenset(),
            pre_failed=state.pre_failed,
            converged=False,
        )
        em = RuntimeEpochMetrics(
            epoch=epoch,
            recovery=recovery,
            security_failure="MessageLost" if state.attempted else "NoResult",
            late_arrivals=state.late_arrivals,
        )
        if self._metrics is None:
            raise SimulationError("epoch finalized outside an active run()")
        self._metrics.epochs.append(em)
