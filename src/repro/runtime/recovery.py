"""Loss-to-reported-failure recovery (paper Section III-B / IV-B).

The querier verifies ``s_t = Σ_{i∈R} ss_i,t`` over *any* reported
subset ``R`` — the property that makes SIES robust to node failures.
The runtime exploits it for packet loss too: every PSR travels with a
**manifest**, the exact set of source ids whose contributions were
merged into it.  Sources start with the singleton manifest; aggregators
forward the union of whatever arrived by their deadline; the querier
reads the final manifest as the reporting subset ``R`` and evaluates
the exact SUM over the survivors instead of rejecting the epoch.

Because the manifest describes what was *actually merged* — not what
senders believe was delivered — ACK losses and sender-side give-ups
never desynchronize verification: a contribution is in the subset iff
it is in the ciphertext.

This module holds the bookkeeping around that idea: classifying each
epoch's sources into survivors / lost / pre-declared-failed, and the
converged-or-not verdict the property tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.network.topology import AggregationTree

__all__ = ["EpochRecovery", "RecoveryLedger", "expected_contributions"]


def expected_contributions(tree: "AggregationTree", attempted: frozenset[int]) -> dict[int, int]:
    """Per-aggregator count of child contributions that could arrive.

    A child source counts iff it attempted to report; a child aggregator
    counts iff any attempted source sits in its subtree.  Both runtimes
    (:class:`~repro.runtime.simulator.RuntimeSimulator` and the TCP
    cluster) use this for the early-merge fast path: an aggregator
    merges the moment everything that *can* arrive has arrived, so
    deadlines only matter when the network actually loses something.
    """
    expected: dict[int, int] = {}
    live_subtree: dict[int, bool] = {sid: sid in attempted for sid in tree.source_ids}
    for aid in tree.bottom_up_aggregators():
        count = sum(1 for child in tree.children(aid) if live_subtree[child])
        expected[aid] = count
        live_subtree[aid] = count > 0
    return expected


@dataclass(frozen=True)
class EpochRecovery:
    """How one epoch's source population fared end to end."""

    epoch: int
    #: Sources that attempted to report (alive, not pre-declared failed).
    attempted: frozenset[int]
    #: Sources whose contribution reached the final PSR (the subset R).
    survivors: frozenset[int]
    #: Sources declared failed up front (never attempted).
    pre_failed: frozenset[int]
    #: True when a final PSR reached the querier at all.
    converged: bool

    def __post_init__(self) -> None:
        if not self.survivors <= self.attempted:
            raise SimulationError(
                f"epoch {self.epoch}: survivors {sorted(self.survivors - self.attempted)} "
                "never attempted to report — manifest corruption"
            )

    @classmethod
    def from_final_manifest(
        cls,
        epoch: int,
        *,
        attempted: frozenset[int],
        manifest: frozenset[int],
        pre_failed: frozenset[int],
    ) -> "EpochRecovery":
        """Recovery verdict for an epoch whose final PSR arrived.

        The *manifest* carried by that PSR **is** the reporting subset
        ``R`` — what was actually merged, not what senders believe was
        delivered — shared by both runtimes so their verdicts can be
        compared verbatim in the differential tests.
        """
        return cls(
            epoch=epoch,
            attempted=attempted,
            survivors=manifest,
            pre_failed=pre_failed,
            converged=True,
        )

    @property
    def lost(self) -> frozenset[int]:
        """Sources whose PSR was swallowed by the network this epoch."""
        return self.attempted - self.survivors

    @property
    def complete(self) -> bool:
        """Every attempted source made it into the final PSR."""
        return self.survivors == self.attempted

    def reporting_subset(self, num_sources: int) -> list[int] | None:
        """The ``reporting_sources`` argument for the querier.

        ``None`` (meaning "all") when every source survived — matching
        the sequential simulator's calling convention so op counts and
        behaviour line up; otherwise the sorted survivor list.
        """
        if self.converged and len(self.survivors) == num_sources:
            return None
        return sorted(self.survivors)


@dataclass
class RecoveryLedger:
    """Run-level tallies of the recovery path (deterministic)."""

    epochs_complete: int = 0
    epochs_recovered: int = 0
    epochs_unrecovered: int = 0
    sources_lost_total: int = 0
    sources_survived_total: int = 0
    lost_by_source: dict[int, int] = field(default_factory=dict)

    def record(self, recovery: EpochRecovery) -> None:
        if not recovery.converged:
            self.epochs_unrecovered += 1
        elif recovery.complete:
            self.epochs_complete += 1
        else:
            self.epochs_recovered += 1
        self.sources_survived_total += len(recovery.survivors)
        self.sources_lost_total += len(recovery.lost)
        for source_id in recovery.lost:
            self.lost_by_source[source_id] = self.lost_by_source.get(source_id, 0) + 1

    def as_dict(self) -> dict[str, object]:
        return {
            "epochs_complete": self.epochs_complete,
            "epochs_recovered": self.epochs_recovered,
            "epochs_unrecovered": self.epochs_unrecovered,
            "sources_lost_total": self.sources_lost_total,
            "sources_survived_total": self.sources_survived_total,
            "lost_by_source": {
                str(sid): count for sid, count in sorted(self.lost_by_source.items())
            },
        }
