"""Trace diffing: explain where two runs (or substrates) diverged.

Two traces of the same seed/tree/plan should tell the same story on the
seed-determined slice; when they do not, :func:`diff_traces` names the
first divergence precisely — which epoch, which disposition class,
which hops appear on one side only — instead of leaving two JSON-lines
files to eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.trace import ObsEvent, trace_dispositions

__all__ = ["DispositionDelta", "TraceDiff", "diff_dispositions", "diff_traces"]


@dataclass(frozen=True)
class DispositionDelta:
    """One disagreement between two traces' disposition slices."""

    epoch: int
    #: Which disposition class disagrees (``delivered``, ``dropped``, …).
    category: str
    only_a: tuple[tuple[int, int], ...]
    only_b: tuple[tuple[int, int], ...]

    def describe(self, label_a: str = "a", label_b: str = "b") -> str:
        parts = [f"epoch {self.epoch} {self.category}:"]
        if self.only_a:
            hops = ", ".join(f"{s}->{r}" for s, r in self.only_a)
            parts.append(f"only in {label_a}: {hops}")
        if self.only_b:
            hops = ", ".join(f"{s}->{r}" for s, r in self.only_b)
            parts.append(f"only in {label_b}: {hops}")
        return " ".join(parts)


@dataclass
class TraceDiff:
    """All disagreements between two traces, ordered by epoch."""

    label_a: str
    label_b: str
    deltas: list[DispositionDelta]

    @property
    def agrees(self) -> bool:
        return not self.deltas

    def describe(self) -> str:
        if self.agrees:
            return f"traces {self.label_a} and {self.label_b} agree on the determined slice"
        lines = [
            f"{len(self.deltas)} disposition difference(s) between "
            f"{self.label_a} and {self.label_b}:"
        ]
        lines.extend(d.describe(self.label_a, self.label_b) for d in self.deltas)
        return "\n".join(lines)


def diff_dispositions(
    dispositions_a: dict[int, dict[str, list[tuple[int, int]]]],
    dispositions_b: dict[int, dict[str, list[tuple[int, int]]]],
) -> list[DispositionDelta]:
    """Compare two disposition slices category by category."""
    deltas: list[DispositionDelta] = []
    for epoch in sorted(set(dispositions_a) | set(dispositions_b)):
        slice_a = dispositions_a.get(epoch, {})
        slice_b = dispositions_b.get(epoch, {})
        for category in ("delivered", "dropped", "late", "decode_failures"):
            hops_a = {tuple(hop) for hop in slice_a.get(category, [])}
            hops_b = {tuple(hop) for hop in slice_b.get(category, [])}
            if hops_a != hops_b:
                deltas.append(
                    DispositionDelta(
                        epoch=epoch,
                        category=category,
                        only_a=tuple(sorted(hops_a - hops_b)),
                        only_b=tuple(sorted(hops_b - hops_a)),
                    )
                )
    return deltas


def diff_traces(
    events_a: Iterable[ObsEvent],
    events_b: Iterable[ObsEvent],
    *,
    label_a: str = "a",
    label_b: str = "b",
) -> TraceDiff:
    """Diff two event streams on the seed-determined disposition slice."""
    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        deltas=diff_dispositions(trace_dispositions(events_a), trace_dispositions(events_b)),
    )
