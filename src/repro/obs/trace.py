"""The unified structured trace: one event schema for every substrate.

:class:`ObsEvent` generalizes the network layer's
:class:`~repro.network.tracing.TraceEvent` with the fields the other
substrates need — *substrate* name, *run id*, *attempt index*, parcel
*uid*, and a *kind* that classifies the disposition of the hop:

======================  =====================================================
kind                    meaning
======================  =====================================================
``send``                a hop crossed an analytic (lossless) channel
``attempt``             the ARQ put one physical attempt on the link
``drop``                the attempt was swallowed (injected loss or channel)
``deliver``             first copy of a parcel handed to the application
``duplicate``           a further copy, suppressed by receiver-side dedup
``late``                a copy arrived after its receiver's merge deadline
``decode_failure``      a frame arrived but no longer parsed
``ack_lost``            the transport ACK was swallowed on the way back
``give_up``             the sender exhausted its retry budget
======================  =====================================================

Traces serialize to JSON-lines (one compact object per event) and are
diffable: :func:`trace_dispositions` reduces a trace to its
**seed-determined slice** — per-epoch sets of delivered / dropped /
late hops — which must be identical for the runtime and the cluster on
the same seed, plan, and tree (``RuntimeConfig.keyed_faults``).  The
ACK-timing-dependent kinds (``give_up``, ``ack_lost``, ``duplicate``)
are recorded but deliberately excluded from that slice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable

__all__ = [
    "EVENT_KINDS",
    "ObsEvent",
    "TraceRecorder",
    "trace_dispositions",
]

from repro.errors import ParameterError

EVENT_KINDS: frozenset[str] = frozenset(
    {
        "send",
        "attempt",
        "drop",
        "deliver",
        "duplicate",
        "late",
        "decode_failure",
        "ack_lost",
        "give_up",
    }
)

#: Kinds whose per-epoch hop sets are pure functions of the seed (given
#: generous deadlines); the slice cross-substrate tests compare.
_DETERMINED_KINDS: tuple[str, ...] = ("deliver", "drop", "late", "decode_failure")


@dataclass(frozen=True)
class ObsEvent:
    """One observed event on one hop of one substrate."""

    sequence: int
    substrate: str
    run_id: str
    kind: str
    epoch: int
    edge: str
    sender: int
    receiver: int
    #: Logical (runtime), monotonic-clock (cluster) or ``None`` (analytic).
    time: float | None = None
    #: 0-based physical attempt index; ``None`` outside the ARQ path.
    attempt: int | None = None
    #: Parcel uid; the cluster and keyed runtime use ``uid == epoch``.
    uid: int | None = None
    wire_bytes: int | None = None
    psr_type: str | None = None
    #: Free-form qualifier (e.g. drop cause ``link`` vs ``channel``).
    detail: str | None = None

    def to_json(self) -> str:
        payload: dict = {
            "seq": self.sequence,
            "sub": self.substrate,
            "run": self.run_id,
            "kind": self.kind,
            "epoch": self.epoch,
            "edge": self.edge,
            "from": self.sender,
            "to": self.receiver,
        }
        for name, value in (
            ("time", self.time),
            ("attempt", self.attempt),
            ("uid", self.uid),
            ("bytes", self.wire_bytes),
            ("psr", self.psr_type),
            ("detail", self.detail),
        ):
            if value is not None:
                payload[name] = value
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "ObsEvent":
        data = json.loads(line)
        return cls(
            sequence=data["seq"],
            substrate=data["sub"],
            run_id=data["run"],
            kind=data["kind"],
            epoch=data["epoch"],
            edge=data["edge"],
            sender=data["from"],
            receiver=data["to"],
            time=data.get("time"),
            attempt=data.get("attempt"),
            uid=data.get("uid"),
            wire_bytes=data.get("bytes"),
            psr_type=data.get("psr"),
            detail=data.get("detail"),
        )


@dataclass
class TraceRecorder:
    """Collects :class:`ObsEvent` records for one run of one substrate.

    Adapters (:mod:`repro.obs.adapters`) feed it; analysis and the
    ``repro trace`` CLI read it.  The recorder assigns sequence numbers
    in call order — causal order on a single-threaded substrate.
    """

    substrate: str
    run_id: str = "run-0"
    events: list[ObsEvent] = field(default_factory=list)
    _sequence: int = 0

    def record(
        self,
        kind: str,
        *,
        epoch: int,
        edge: str,
        sender: int,
        receiver: int,
        time: float | None = None,
        attempt: int | None = None,
        uid: int | None = None,
        wire_bytes: int | None = None,
        psr_type: str | None = None,
        detail: str | None = None,
    ) -> ObsEvent:
        if kind not in EVENT_KINDS:
            raise ParameterError(
                f"unknown trace event kind {kind!r}; expected one of {sorted(EVENT_KINDS)}"
            )
        event = ObsEvent(
            sequence=self._sequence,
            substrate=self.substrate,
            run_id=self.run_id,
            kind=kind,
            epoch=epoch,
            edge=edge,
            sender=sender,
            receiver=receiver,
            time=time,
            attempt=attempt,
            uid=uid,
            wire_bytes=wire_bytes,
            psr_type=psr_type,
            detail=detail,
        )
        self.events.append(event)
        self._sequence += 1
        return event

    def reset(self) -> None:
        """Start a fresh trace (run-boundary scoping)."""
        self.events = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def epochs(self) -> list[int]:
        return sorted({e.epoch for e in self.events})

    def filter(
        self,
        *,
        epoch: int | None = None,
        node: int | None = None,
        edge: str | None = None,
        kinds: Iterable[str] | None = None,
    ) -> list[ObsEvent]:
        wanted = None if kinds is None else frozenset(kinds)
        out = []
        for event in self.events:
            if epoch is not None and event.epoch != epoch:
                continue
            if node is not None and node not in (event.sender, event.receiver):
                continue
            if edge is not None and event.edge != edge:
                continue
            if wanted is not None and event.kind not in wanted:
                continue
            out.append(event)
        return out

    def dispositions(self) -> dict[int, dict[str, list[tuple[int, int]]]]:
        return trace_dispositions(self.events)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def write_jsonl(self, stream: IO[str]) -> int:
        for event in self.events:
            stream.write(event.to_json() + "\n")
        return len(self.events)

    @classmethod
    def read_jsonl(cls, stream: IO[str]) -> "TraceRecorder":
        events = [ObsEvent.from_json(line) for line in stream if line.strip()]
        substrate = events[0].substrate if events else "unknown"
        run_id = events[0].run_id if events else "run-0"
        recorder = cls(substrate=substrate, run_id=run_id)
        recorder.events = events
        recorder._sequence = len(events)
        return recorder


def trace_dispositions(
    events: Iterable[ObsEvent],
) -> dict[int, dict[str, list[tuple[int, int]]]]:
    """Reduce a trace to its seed-determined per-epoch hop dispositions.

    For every epoch: ``delivered`` is the set of ``(sender, receiver)``
    hops whose parcel reached the application, ``dropped`` the hops
    that were attempted but never delivered (every copy swallowed),
    ``late`` the hops with a post-deadline arrival, and
    ``decode_failures`` the hops that received unparseable frames.
    Hop sets are sorted lists of pairs so two substrates' dispositions
    compare (and JSON-serialize) directly.
    """
    delivered: dict[int, set[tuple[int, int]]] = {}
    attempted: dict[int, set[tuple[int, int]]] = {}
    late: dict[int, set[tuple[int, int]]] = {}
    decode_failures: dict[int, set[tuple[int, int]]] = {}
    for event in events:
        hop = (event.sender, event.receiver)
        if event.kind in ("attempt", "send"):
            attempted.setdefault(event.epoch, set()).add(hop)
        elif event.kind in ("deliver",):
            delivered.setdefault(event.epoch, set()).add(hop)
            attempted.setdefault(event.epoch, set()).add(hop)
        elif event.kind == "late":
            late.setdefault(event.epoch, set()).add(hop)
        elif event.kind == "decode_failure":
            decode_failures.setdefault(event.epoch, set()).add(hop)
        # send on an analytic channel *is* a delivery (lossless hop)
        if event.kind == "send":
            delivered.setdefault(event.epoch, set()).add(hop)
    out: dict[int, dict[str, list[tuple[int, int]]]] = {}
    epochs = set(attempted) | set(delivered) | set(late) | set(decode_failures)
    for epoch in sorted(epochs):
        got = delivered.get(epoch, set())
        tried = attempted.get(epoch, set())
        out[epoch] = {
            "delivered": sorted(got),
            "dropped": sorted(tried - got),
            "late": sorted(late.get(epoch, set())),
            "decode_failures": sorted(decode_failures.get(epoch, set())),
        }
    return out
