"""Per-phase profiling hooks for the crypto and codec hot paths.

:class:`PhaseProfiler` accumulates call counts and elapsed time per
named phase (``encrypt``, ``combine``, ``evaluate``, ``encode``,
``decode``, …).  The time source is injectable; the default is
:func:`time.perf_counter`, the one wall-clock primitive the project's
determinism rule (SL002) explicitly allows because it never leaks into
seeded state — profiling numbers are *measurements about* a run, never
inputs to it.  Deterministic consumers can inject a logical counter
instead (the tests do).

:class:`ProfiledCodec` wraps any
:class:`~repro.wire.codec.PSRCodec`-shaped object and charges its
``encode``/``decode`` to a profiler, so a simulator built with
``Channel(codec=ProfiledCodec(codec, profiler))`` surfaces the codec
tax without touching the wire layer.  Phase figures publish into the
unified registry as ``sies_phase_calls_total`` /
``sies_phase_seconds_total`` (see :mod:`repro.obs.publish`).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

__all__ = ["PhaseProfiler", "ProfiledCodec"]


@dataclass
class _PhaseTotals:
    calls: int = 0
    seconds: float = 0.0


class PhaseProfiler:
    """Accumulates ``calls``/``seconds`` per named phase."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._totals: dict[str, _PhaseTotals] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one block under *name*::

            with profiler.phase("evaluate"):
                querier.evaluate(epoch, psr)
        """
        started = self._clock()
        try:
            yield
        finally:
            totals = self._totals.setdefault(name, _PhaseTotals())
            totals.calls += 1
            totals.seconds += self._clock() - started

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Return *fn* instrumented as phase *name* (args passed through)."""

        def wrapped(*args, **kwargs):
            with self.phase(name):
                return fn(*args, **kwargs)

        return wrapped

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{phase: {"calls": n, "seconds": s}}``, phases sorted."""
        return {
            name: {"calls": totals.calls, "seconds": totals.seconds}
            for name, totals in sorted(self._totals.items())
        }

    def publish(self, registry: "MetricsRegistry", *, substrate: str) -> None:
        """Export totals into the unified registry."""
        calls = registry.counter(
            "sies_phase_calls_total",
            "Invocations of a profiled phase",
            ("substrate", "phase"),
        )
        seconds = registry.counter(
            "sies_phase_seconds_total",
            "Elapsed time inside a profiled phase",
            ("substrate", "phase"),
        )
        for name, totals in sorted(self._totals.items()):
            calls.inc(totals.calls, substrate=substrate, phase=name)
            seconds.inc(totals.seconds, substrate=substrate, phase=name)


class ProfiledCodec:
    """A :class:`~repro.wire.codec.PSRCodec` wrapper charging a profiler.

    Delegates everything; only ``encode`` and ``decode`` are timed
    (``framed_size`` is arithmetic, not a hot path).
    """

    def __init__(self, codec, profiler: PhaseProfiler) -> None:
        self._codec = codec
        self._profiler = profiler

    def encode(self, psr) -> bytes:
        with self._profiler.phase("encode"):
            return self._codec.encode(psr)

    def decode(self, frame: bytes):
        with self._profiler.phase("decode"):
            return self._codec.decode(frame)

    def __getattr__(self, name: str):
        return getattr(self._codec, name)
