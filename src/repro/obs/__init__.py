"""repro.obs — the unified observability layer.

One trace schema, one metric namespace, one profiler for all three
substrates (analytic network, event runtime, TCP cluster):

* :mod:`repro.obs.trace` — :class:`ObsEvent` / :class:`TraceRecorder`,
  JSON-lines serialization, and the seed-determined disposition slice;
* :mod:`repro.obs.adapters` — hook adapters for the analytic channel
  and the runtime/cluster ``(kind, attrs)`` transport observers;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, fixed-bucket histograms, Prometheus-text and JSON exporters;
* :mod:`repro.obs.publish` — maps every substrate's native ledger into
  the unified ``sies_*`` metric names;
* :mod:`repro.obs.profiling` — per-phase timers for the crypto/codec
  hot paths;
* :mod:`repro.obs.diff` — trace diffing on the determined slice.
"""

from repro.obs.adapters import ChannelTraceAdapter, TransportTraceAdapter
from repro.obs.diff import DispositionDelta, TraceDiff, diff_dispositions, diff_traces
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiling import PhaseProfiler, ProfiledCodec
from repro.obs.publish import (
    publish_cluster_metrics,
    publish_network_metrics,
    publish_ops,
    publish_runtime_metrics,
    publish_traffic,
)
from repro.obs.trace import EVENT_KINDS, ObsEvent, TraceRecorder, trace_dispositions

__all__ = [
    "EVENT_KINDS",
    "ObsEvent",
    "TraceRecorder",
    "trace_dispositions",
    "ChannelTraceAdapter",
    "TransportTraceAdapter",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "ProfiledCodec",
    "publish_traffic",
    "publish_ops",
    "publish_network_metrics",
    "publish_runtime_metrics",
    "publish_cluster_metrics",
    "DispositionDelta",
    "TraceDiff",
    "diff_dispositions",
    "diff_traces",
]
