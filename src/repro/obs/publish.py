"""Publishers: native per-substrate metrics → the unified registry.

Each substrate keeps its ad-hoc ledger shape for backward compatibility;
these functions map every ledger into one metric namespace so
``repro metrics`` (and any Prometheus scrape of an exported file) reads
identical names whichever substrate produced the run:

==========================================  =======================================
metric                                      labels
==========================================  =======================================
``sies_traffic_bytes_total``                ``substrate, edge`` (analytic payload)
``sies_traffic_messages_total``             ``substrate, edge``
``sies_frame_bytes_total``                  ``substrate, edge`` (measured frames)
``sies_decode_failures_total``              ``substrate, edge``
``sies_transport_attempts_total``           ``substrate, edge``
``sies_transport_retransmissions_total``    ``substrate, edge``
``sies_transport_delivered_total``          ``substrate, edge``
``sies_transport_duplicates_total``         ``substrate, edge`` (suppressed copies)
``sies_transport_late_total``               ``substrate, edge``
``sies_transport_gave_up_total``            ``substrate, edge``
``sies_transport_acks_sent_total``          ``substrate, edge``
``sies_transport_acks_lost_total``          ``substrate, edge``
``sies_epochs_total``                       ``substrate``
``sies_epochs_accepted_total``              ``substrate``
``sies_epochs_unrecovered_total``           ``substrate``
``sies_delivery_rate``                      ``substrate`` (gauge)
``sies_acceptance_rate``                    ``substrate`` (gauge)
``sies_completion_latency``                 ``substrate`` (histogram, fixed buckets)
``sies_ops_total``                          ``substrate, role, op``
``sies_phase_calls_total``                  ``substrate, phase`` (profiler)
``sies_phase_seconds_total``                ``substrate, phase`` (profiler)
==========================================  =======================================

Substrate label values: ``network`` (analytic), ``runtime`` (event
runtime), ``cluster`` (asyncio TCP).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.channel import TrafficCounters
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

if TYPE_CHECKING:
    from repro.cluster.metrics import ClusterRunMetrics
    from repro.network.metrics import RunMetrics
    from repro.protocols.base import OpCounter
    from repro.runtime.metrics import RuntimeRunMetrics

__all__ = [
    "publish_traffic",
    "publish_ops",
    "publish_network_metrics",
    "publish_runtime_metrics",
    "publish_cluster_metrics",
]

_EDGE_LABELS = ("substrate", "edge")


def publish_traffic(
    counters: TrafficCounters, registry: MetricsRegistry, *, substrate: str
) -> None:
    """Channel-layer byte/message accounting (all substrates share it)."""
    traffic_bytes = registry.counter(
        "sies_traffic_bytes_total", "Analytic payload bytes per edge class", _EDGE_LABELS
    )
    messages = registry.counter(
        "sies_traffic_messages_total", "Messages per edge class", _EDGE_LABELS
    )
    frame_bytes = registry.counter(
        "sies_frame_bytes_total", "Measured wire-frame bytes per edge class", _EDGE_LABELS
    )
    decode_failures = registry.counter(
        "sies_decode_failures_total", "Frames discarded as unparseable", _EDGE_LABELS
    )
    for edge, count in sorted(counters.bytes_by_class.items(), key=lambda kv: kv[0].value):
        traffic_bytes.inc(count, substrate=substrate, edge=edge.value)
    for edge, count in sorted(counters.messages_by_class.items(), key=lambda kv: kv[0].value):
        messages.inc(count, substrate=substrate, edge=edge.value)
    for edge, count in sorted(
        counters.frame_bytes_by_class.items(), key=lambda kv: kv[0].value
    ):
        frame_bytes.inc(count, substrate=substrate, edge=edge.value)
    for edge, count in sorted(
        counters.decode_failures_by_class.items(), key=lambda kv: kv[0].value
    ):
        decode_failures.inc(count, substrate=substrate, edge=edge.value)


def publish_ops(
    registry: MetricsRegistry,
    *,
    substrate: str,
    source: "OpCounter",
    aggregator: "OpCounter",
    querier: "OpCounter",
) -> None:
    """Primitive-operation counts per role under one metric."""
    ops = registry.counter(
        "sies_ops_total", "Primitive operations per role", ("substrate", "role", "op")
    )
    for role, counter in (("source", source), ("aggregator", aggregator), ("querier", querier)):
        for op, count in sorted(counter.counts.items()):
            if count:
                ops.inc(count, substrate=substrate, role=role, op=op)


def _publish_epoch_outcomes(
    registry: MetricsRegistry,
    *,
    substrate: str,
    total: int,
    accepted: int,
    unrecovered: int,
    delivery_rate: float,
    acceptance_rate: float,
    latencies: list[float],
) -> None:
    registry.counter("sies_epochs_total", "Epochs executed", ("substrate",)).inc(
        total, substrate=substrate
    )
    registry.counter(
        "sies_epochs_accepted_total", "Epochs whose exact SUM was accepted", ("substrate",)
    ).inc(accepted, substrate=substrate)
    registry.counter(
        "sies_epochs_unrecovered_total", "Epochs lost end to end", ("substrate",)
    ).inc(unrecovered, substrate=substrate)
    registry.gauge(
        "sies_delivery_rate", "Fraction of attempted contributions that survived", ("substrate",)
    ).set(delivery_rate, substrate=substrate)
    registry.gauge(
        "sies_acceptance_rate", "Fraction of epochs accepted by the querier", ("substrate",)
    ).set(acceptance_rate, substrate=substrate)
    latency = registry.histogram(
        "sies_completion_latency",
        "Epoch completion latency (substrate-native time units)",
        DEFAULT_LATENCY_BUCKETS,
        ("substrate",),
    )
    for sample in latencies:
        latency.observe(sample, substrate=substrate)


def publish_network_metrics(metrics: "RunMetrics", registry: MetricsRegistry) -> None:
    """Analytic :class:`~repro.network.metrics.RunMetrics` → registry."""
    substrate = "network"
    publish_traffic(metrics.traffic, registry, substrate=substrate)
    publish_ops(
        registry,
        substrate=substrate,
        source=metrics.source_ops,
        aggregator=metrics.aggregator_ops,
        querier=metrics.querier_ops,
    )
    accepted = sum(
        1 for e in metrics.epochs if e.result is not None and e.security_failure is None
    )
    unrecovered = sum(1 for e in metrics.epochs if e.security_failure is not None)
    _publish_epoch_outcomes(
        registry,
        substrate=substrate,
        total=metrics.num_epochs,
        accepted=accepted,
        unrecovered=unrecovered,
        delivery_rate=1.0,
        acceptance_rate=accepted / metrics.num_epochs if metrics.num_epochs else 1.0,
        latencies=[],
    )


def _publish_transport_dicts(
    registry: MetricsRegistry, *, substrate: str, fields: dict[str, dict]
) -> None:
    help_by_name = {
        "sies_transport_attempts_total": "Physical ARQ attempts",
        "sies_transport_retransmissions_total": "Attempts beyond the first per parcel",
        "sies_transport_delivered_total": "First copies handed to the application",
        "sies_transport_duplicates_total": "Copies suppressed by receiver dedup",
        "sies_transport_late_total": "Copies arriving after their merge deadline",
        "sies_transport_gave_up_total": "Parcels whose sender exhausted its retries",
        "sies_transport_acks_sent_total": "Transport ACKs sent",
        "sies_transport_acks_lost_total": "Transport ACKs swallowed in flight",
    }
    for name, per_edge in fields.items():
        metric = registry.counter(name, help_by_name[name], _EDGE_LABELS)
        for edge, count in sorted(per_edge.items(), key=lambda kv: getattr(kv[0], "value", kv[0])):
            edge_value = getattr(edge, "value", edge)
            if count:
                metric.inc(count, substrate=substrate, edge=edge_value)


def publish_runtime_metrics(metrics: "RuntimeRunMetrics", registry: MetricsRegistry) -> None:
    """Event-runtime ledger → registry (logical-time latencies)."""
    substrate = "runtime"
    publish_traffic(metrics.traffic, registry, substrate=substrate)
    publish_ops(
        registry,
        substrate=substrate,
        source=metrics.source_ops,
        aggregator=metrics.aggregator_ops,
        querier=metrics.querier_ops,
    )
    transport = metrics.transport
    _publish_transport_dicts(
        registry,
        substrate=substrate,
        fields={
            "sies_transport_attempts_total": transport.attempts,
            "sies_transport_retransmissions_total": transport.retransmissions,
            "sies_transport_delivered_total": transport.delivered,
            "sies_transport_duplicates_total": transport.duplicates_suppressed,
            "sies_transport_gave_up_total": transport.gave_up,
            "sies_transport_acks_sent_total": transport.acks_sent,
            "sies_transport_acks_lost_total": transport.acks_lost,
        },
    )
    late = registry.counter(
        "sies_transport_late_total",
        "Copies arriving after their merge deadline",
        _EDGE_LABELS,
    )
    late_total = sum(e.late_arrivals for e in metrics.epochs)
    if late_total:
        late.inc(late_total, substrate=substrate, edge="all")
    accepted = sum(1 for e in metrics.epochs if e.accepted)
    unrecovered = sum(1 for e in metrics.epochs if not e.recovery.converged)
    _publish_epoch_outcomes(
        registry,
        substrate=substrate,
        total=metrics.num_epochs,
        accepted=accepted,
        unrecovered=unrecovered,
        delivery_rate=metrics.delivery_rate(),
        acceptance_rate=metrics.acceptance_rate(),
        latencies=metrics.completion_latencies(),
    )


def publish_cluster_metrics(metrics: "ClusterRunMetrics", registry: MetricsRegistry) -> None:
    """TCP-cluster ledger → registry (real-seconds latencies)."""
    substrate = "cluster"
    ledger = metrics.traffic
    by_edge = sorted(ledger.by_class.items(), key=lambda kv: kv[0].value)
    traffic_bytes = registry.counter(
        "sies_traffic_bytes_total", "Analytic payload bytes per edge class", _EDGE_LABELS
    )
    messages = registry.counter(
        "sies_traffic_messages_total", "Messages per edge class", _EDGE_LABELS
    )
    frame_bytes = registry.counter(
        "sies_frame_bytes_total", "Measured wire-frame bytes per edge class", _EDGE_LABELS
    )
    decode_failures = registry.counter(
        "sies_decode_failures_total", "Frames discarded as unparseable", _EDGE_LABELS
    )
    for edge, c in by_edge:
        if c.psr_bytes:
            traffic_bytes.inc(c.psr_bytes, substrate=substrate, edge=edge.value)
        if c.delivered:
            messages.inc(c.delivered, substrate=substrate, edge=edge.value)
        if c.envelope_bytes:
            frame_bytes.inc(c.envelope_bytes, substrate=substrate, edge=edge.value)
        if c.decode_failures:
            decode_failures.inc(c.decode_failures, substrate=substrate, edge=edge.value)
    _publish_transport_dicts(
        registry,
        substrate=substrate,
        fields={
            "sies_transport_attempts_total": {e: c.attempts for e, c in by_edge},
            "sies_transport_retransmissions_total": {e: c.retransmissions for e, c in by_edge},
            "sies_transport_delivered_total": {e: c.delivered for e, c in by_edge},
            "sies_transport_duplicates_total": {e: c.duplicates_suppressed for e, c in by_edge},
            "sies_transport_late_total": {e: c.late_frames for e, c in by_edge},
            "sies_transport_gave_up_total": {e: c.gave_up for e, c in by_edge},
            "sies_transport_acks_sent_total": {e: c.acks_sent for e, c in by_edge},
            "sies_transport_acks_lost_total": {e: c.acks_dropped for e, c in by_edge},
        },
    )
    accepted = sum(1 for e in metrics.epochs if e.accepted)
    unrecovered = sum(1 for e in metrics.epochs if not e.recovery.converged)
    _publish_epoch_outcomes(
        registry,
        substrate=substrate,
        total=metrics.num_epochs,
        accepted=accepted,
        unrecovered=unrecovered,
        delivery_rate=metrics.delivery_rate(),
        acceptance_rate=metrics.acceptance_rate(),
        latencies=[e.completion_latency for e in metrics.epochs if e.recovery.converged],
    )
