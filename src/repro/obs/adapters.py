"""Adapters feeding the unified trace from each substrate's hooks.

Three hook surfaces, one schema:

* :class:`ChannelTraceAdapter` — a PSR-level interceptor on the analytic
  :class:`~repro.network.channel.Channel` (lossless hops → ``send``
  events), run-scoped via the channel's ``begin_run`` listeners;
* :class:`TransportTraceAdapter` — the ``(kind, attrs)`` observer
  callable understood by both the runtime's
  :class:`~repro.runtime.transport.ReliableTransport`
  (``RuntimeSimulator.set_observer``) and the cluster's node/ARQ path
  (``ClusterConfig.observer``), turning attempt/drop/deliver/duplicate/
  late/decode-failure/give-up callbacks into :class:`ObsEvent` records.

The lower layers never import :mod:`repro.obs` — they emit plain
callables/dicts and these adapters do the schema mapping, keeping the
observability spine strictly on top of the substrates it observes.
"""

from __future__ import annotations

from repro.network.channel import Channel, EdgeClass, TrafficCounters
from repro.network.messages import DataMessage
from repro.obs.trace import TraceRecorder

__all__ = ["ChannelTraceAdapter", "TransportTraceAdapter"]


class ChannelTraceAdapter:
    """Records every analytic channel hop as a ``send`` event.

    The analytic :class:`~repro.network.simulator.NetworkSimulator` has
    lossless function-call links, so a hop observed is a hop delivered;
    :func:`~repro.obs.trace.trace_dispositions` treats ``send``
    accordingly.  Attach/detach are idempotent and the recorder is
    cleared on every ``begin_run`` — same run-scoping contract as
    :class:`~repro.network.tracing.SimulationTracer`.
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder
        self._channel: Channel | None = None

    def attach(self, channel: Channel) -> None:
        if self._channel is channel:
            return
        if self._channel is not None:
            self.detach()
        channel.add_interceptor(self._observe)
        channel.add_run_listener(self._on_begin_run)
        self._channel = channel

    def detach(self) -> None:
        if self._channel is None:
            return
        self._channel.remove_interceptor(self._observe)
        self._channel.remove_run_listener(self._on_begin_run)
        self._channel = None

    def _on_begin_run(self, counters: TrafficCounters) -> None:
        self.recorder.reset()

    def _observe(self, message: DataMessage, edge: EdgeClass) -> DataMessage:
        self.recorder.record(
            "send",
            epoch=message.epoch,
            edge=edge.value,
            sender=message.sender,
            receiver=message.receiver,
            wire_bytes=message.wire_size(),
            psr_type=type(message.psr).__name__,
        )
        return message


class TransportTraceAdapter:
    """``(kind, attrs)`` observer → :class:`ObsEvent` records.

    Works unchanged as ``RuntimeSimulator.set_observer(adapter)`` and as
    the cluster's ``observer`` (both emit the same attribute keys:
    ``time``, ``epoch``, ``uid``, ``attempt``, ``edge``, ``sender``,
    ``receiver``, optional ``cause``).
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder

    def __call__(self, kind: str, attrs: dict) -> None:
        self.recorder.record(
            kind,
            epoch=attrs["epoch"],
            edge=attrs["edge"],
            sender=attrs["sender"],
            receiver=attrs["receiver"],
            time=attrs.get("time"),
            attempt=attrs.get("attempt"),
            uid=attrs.get("uid"),
            wire_bytes=attrs.get("bytes"),
            detail=attrs.get("cause"),
        )
