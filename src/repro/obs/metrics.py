"""Substrate-neutral metrics registry with Prometheus/JSON exporters.

Every substrate keeps its own native accounting —
:class:`~repro.network.channel.TrafficCounters`,
:class:`~repro.runtime.metrics.RuntimeRunMetrics`,
:class:`~repro.cluster.metrics.ClusterRunMetrics` — and *publishes*
into one :class:`MetricsRegistry` under unified names
(:mod:`repro.obs.publish`), so a dashboard or diff tool reads one
namespace regardless of which execution substrate produced the run.

Design constraints:

* **No clock.**  The registry stores only values handed to it; any
  timing it reports was measured elsewhere (``ClusterClock``,
  ``EventScheduler`` logical time, or an injected counter).  That keeps
  the module SL002-clean and the exported values deterministic for
  seeded runs.
* **Fixed histogram buckets.**  Bucket bounds are part of a histogram's
  identity, declared at creation and immutable — two runs always bin
  identically, so exported histograms diff cleanly.
* **Prometheus text + JSON.**  :meth:`MetricsRegistry.render_prometheus`
  emits the text exposition format (``# HELP``/``# TYPE``, cumulative
  ``_bucket{le=...}``); :meth:`MetricsRegistry.render_json` the same
  content as one sorted JSON-friendly dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import cast

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default fixed bounds for latency histograms.  Spans logical time
#: units (runtime: hundreds) and real seconds (cluster: fractions) so
#: one bucket layout serves every substrate.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.005,
    0.025,
    0.1,
    0.5,
    1.0,
    5.0,
    25.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)

_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ParameterError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Prometheus accepts both; integral values print without the
    # trailing ``.0`` so counters look like counters.
    if isinstance(value, bool):
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _series_suffix(labelnames: tuple[str, ...], label_values: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, label_values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared series bookkeeping for all three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...]) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self.labelnames = tuple(labelnames)

    def _series_values(self, label_kwargs: dict[str, str]) -> tuple[str, ...]:
        if set(label_kwargs) != set(self.labelnames):
            raise ParameterError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(label_kwargs)}"
            )
        return tuple(str(label_kwargs[name]) for name in self.labelnames)


class Counter(_Metric):
    """Monotonically increasing count (per labelled series)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ParameterError(f"counter {self.name!r} cannot decrease (inc {amount})")
        values = self._series_values(labels)
        self._series[values] = self._series.get(values, 0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(self._series_values(labels), 0)

    def samples(self) -> list[tuple[str, tuple[str, ...], float]]:
        return [(self.name, values, count) for values, count in sorted(self._series.items())]


class Gauge(_Metric):
    """A value that can go up and down (per labelled series)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._series[self._series_values(labels)] = float(value)

    def value(self, **labels: str) -> float:
        return self._series.get(self._series_values(labels), 0.0)

    def samples(self) -> list[tuple[str, tuple[str, ...], float]]:
        return [(self.name, values, v) for values, v in sorted(self._series.items())]


@dataclass
class _HistogramSeries:
    counts: list[int]
    total: float = 0.0
    observations: int = 0


class Histogram(_Metric):
    """Observations binned into *fixed* cumulative buckets.

    ``bounds`` are upper-inclusive bucket edges in strictly increasing
    order; an implicit ``+Inf`` bucket always exists.  Bounds are frozen
    at creation — the point of fixed buckets is that two runs (or two
    substrates) bin identically and therefore diff meaningfully.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        bounds: tuple[float, ...],
        labelnames: tuple[str, ...] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if not bounds:
            raise ParameterError(f"histogram {self.name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ParameterError(
                f"histogram {self.name!r} bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        values = self._series_values(labels)
        series = self._series.get(values)
        if series is None:
            series = _HistogramSeries(counts=[0] * (len(self.bounds) + 1))
            self._series[values] = series
        placed = len(self.bounds)  # +Inf bucket by default
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                placed = index
                break
        series.counts[placed] += 1
        series.total += float(value)
        series.observations += 1

    def snapshot(self, **labels: str) -> dict[str, float | list[int]]:
        series = self._series.get(self._series_values(labels))
        if series is None:
            return {"counts": [0] * (len(self.bounds) + 1), "sum": 0.0, "count": 0}
        return {
            "counts": list(series.counts),
            "sum": series.total,
            "count": series.observations,
        }

    def series_items(self) -> list[tuple[tuple[str, ...], _HistogramSeries]]:
        return sorted(self._series.items())


class MetricsRegistry:
    """One namespace of metrics, shared by all substrates of a run."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, factory) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ParameterError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> Counter:
        metric = self._get_or_create(Counter, name, lambda: Counter(name, help_text, labelnames))
        if metric.labelnames != tuple(labelnames):
            raise ParameterError(
                f"metric {name!r} registered with labels {metric.labelnames}, got {labelnames}"
            )
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()) -> Gauge:
        metric = self._get_or_create(Gauge, name, lambda: Gauge(name, help_text, labelnames))
        if metric.labelnames != tuple(labelnames):
            raise ParameterError(
                f"metric {name!r} registered with labels {metric.labelnames}, got {labelnames}"
            )
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        labelnames: tuple[str, ...] = (),
    ) -> Histogram:
        created = self._get_or_create(
            Histogram, name, lambda: Histogram(name, help_text, bounds, labelnames)
        )
        metric = cast(Histogram, created)
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ParameterError(
                f"histogram {name!r} registered with bounds {metric.bounds}; fixed "
                f"buckets cannot be redefined to {bounds}"
            )
        if metric.labelnames != tuple(labelnames):
            raise ParameterError(
                f"metric {name!r} registered with labels {metric.labelnames}, got {labelnames}"
            )
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        metric = self._metrics.get(name)
        return metric  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, metrics sorted by name."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                for _, label_values, value in metric.samples():
                    suffix = _series_suffix(metric.labelnames, label_values)
                    lines.append(f"{name}{suffix} {_format_value(value)}")
            elif isinstance(metric, Histogram):
                for label_values, series in metric.series_items():
                    cumulative = 0
                    for bound, count in zip(metric.bounds, series.counts):
                        cumulative += count
                        bucket_names = metric.labelnames + ("le",)
                        bucket_values = label_values + (_format_value(bound),)
                        suffix = _series_suffix(bucket_names, bucket_values)
                        lines.append(f"{name}_bucket{suffix} {cumulative}")
                    cumulative += series.counts[-1]
                    suffix = _series_suffix(metric.labelnames + ("le",), label_values + ("+Inf",))
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                    plain = _series_suffix(metric.labelnames, label_values)
                    lines.append(f"{name}_sum{plain} {_format_value(series.total)}")
                    lines.append(f"{name}_count{plain} {series.observations}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> dict:
        """The registry as one sorted JSON-friendly dict."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: dict = {
                "type": metric.kind,
                "help": metric.help_text,
                "labels": list(metric.labelnames),
            }
            if isinstance(metric, (Counter, Gauge)):
                entry["series"] = [
                    {"labels": list(label_values), "value": value}
                    for _, label_values, value in metric.samples()
                ]
            elif isinstance(metric, Histogram):
                entry["buckets"] = list(metric.bounds)
                entry["series"] = [
                    {
                        "labels": list(label_values),
                        "counts": list(series.counts),
                        "sum": series.total,
                        "count": series.observations,
                    }
                    for label_values, series in metric.series_items()
                ]
            out[name] = entry
        return out
