"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``run``        simulate a protocol over a generated network and print
               per-epoch verified results and cost summaries;
``runtime``    run the fault-injecting event runtime — seeded loss,
               per-hop retransmission, loss recovery — and print the
               per-epoch recovery outcomes plus transport metrics;
``query``      execute a continuous aggregate query (the paper's
               SELECT template) and print per-epoch answers;
``attack``     mount a named adversary and report detection outcomes;
``cluster``    run the aggregation tree as an asyncio TCP cluster — every
               node on a real localhost socket — with seeded stream-layer
               loss and pipelined epochs;
``experiment`` regenerate a paper table/figure by name;
``bounds``     print the Theorem 1–4 security bounds for a parameter set;
``info``       print the build's protocol registry: names, frame-header
               wire ids and the wire-format version;
``lint``       run sieslint, the AST-based invariant checker (per-file
               rules SL001–SL009 plus the project-wide interprocedural
               secret-flow and SL010 wire-contract passes), over source
               trees; non-zero exit on non-baselined findings.  Supports
               parallel analysis (``--jobs``) and SARIF 2.1.0 output
               (``--sarif`` / ``--sarif-file``) for CI annotations.
``trace``      record a seeded run of any substrate as a unified
               JSON-lines event trace (``repro.obs``), or replay a
               recorded trace: filter by epoch/node/edge, reduce to the
               seed-determined disposition slice, diff two traces;
``metrics``    run a substrate and export its ledger through the unified
               metrics registry as Prometheus text or JSON.

Examples::

    python -m repro.cli run --protocol sies --sources 64 --epochs 5
    python -m repro.cli runtime --sources 64 --epochs 20 --loss 0.2
    python -m repro.cli cluster --sources 64 --epochs 100 --loss 0.2 --window 8
    python -m repro.cli query --aggregate AVG --where "temperature>=20" --sources 32
    python -m repro.cli attack --attack replay --protocol sies
    python -m repro.cli experiment fig5
    python -m repro.cli bounds --sources 1024 --share-bytes 8
    python -m repro.cli lint src --json
    python -m repro.cli trace --substrate runtime --loss 0.2 --output run.jsonl
    python -m repro.cli trace --input run.jsonl --epoch 3 --dispositions
    python -m repro.cli metrics --substrate cluster --format prometheus
"""

from __future__ import annotations

import argparse
import sys

from repro.core.params import SIESParams
from repro.errors import SimulationError
from repro.core.security import bounds_for
from repro.datasets.workload import DomainScaledWorkload
from repro.network.channel import EdgeClass
from repro.network.simulator import NetworkSimulator, SimulationConfig
from repro.network.topology import build_complete_tree
from repro.protocols.registry import available_protocols, create_protocol
from repro.queries.engine import ContinuousQuery
from repro.queries.predicates import AlwaysTrue, parse_predicate
from repro.queries.query import AggregateKind, Query

__all__ = ["main", "build_parser"]

_EXPERIMENTS = ("table2", "table3", "table5", "fig4", "fig5", "fig6a", "fig6b",
                "extension_scalability", "extension_energy", "run_all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate a protocol")
    run_p.add_argument("--protocol", default="sies", choices=sorted(available_protocols()))
    run_p.add_argument("--sources", type=int, default=64)
    run_p.add_argument("--fanout", type=int, default=4)
    run_p.add_argument("--epochs", type=int, default=5)
    run_p.add_argument("--scale", type=int, default=100)
    run_p.add_argument("--seed", type=int, default=2011)

    runtime_p = sub.add_parser("runtime", help="fault-injecting event runtime")
    runtime_p.add_argument("--protocol", default="sies", choices=sorted(available_protocols()))
    runtime_p.add_argument("--sources", type=int, default=64)
    runtime_p.add_argument("--fanout", type=int, default=4)
    runtime_p.add_argument("--epochs", type=int, default=20)
    runtime_p.add_argument("--loss", type=float, default=0.2,
                           help="per-hop loss probability (default 0.2)")
    runtime_p.add_argument("--latency", type=float, default=1.0,
                           help="base per-hop latency in logical ticks")
    runtime_p.add_argument("--duplicate", type=float, default=0.0,
                           help="per-hop duplication probability")
    runtime_p.add_argument("--max-retries", type=int, default=4)
    runtime_p.add_argument("--ack-timeout", type=float, default=12.0)
    runtime_p.add_argument("--scale", type=int, default=100)
    runtime_p.add_argument("--seed", type=int, default=2011)
    runtime_p.add_argument("--json", action="store_true",
                           help="print the full deterministic metrics ledger as JSON")

    cluster_p = sub.add_parser("cluster", help="aggregation tree over real TCP sockets")
    cluster_p.add_argument("--protocol", default="sies", choices=sorted(available_protocols()))
    cluster_p.add_argument("--sources", type=int, default=64)
    cluster_p.add_argument("--fanout", type=int, default=4)
    cluster_p.add_argument("--epochs", type=int, default=20)
    cluster_p.add_argument("--loss", type=float, default=0.2,
                           help="per-hop envelope loss probability (default 0.2)")
    cluster_p.add_argument("--duplicate", type=float, default=0.0,
                           help="per-hop duplication probability")
    cluster_p.add_argument("--window", type=int, default=8,
                           help="epochs pipelined concurrently (default 8)")
    cluster_p.add_argument("--hold-time", type=float, default=0.25,
                           help="merge-deadline spacing per tree level, seconds")
    cluster_p.add_argument("--querier-slack", type=float, default=0.25,
                           help="extra querier wait beyond the root deadline, seconds")
    cluster_p.add_argument("--ack-timeout", type=float, default=0.01,
                           help="first ARQ retransmit timeout, seconds")
    cluster_p.add_argument("--max-retries", type=int, default=4)
    cluster_p.add_argument("--scale", type=int, default=100)
    cluster_p.add_argument("--seed", type=int, default=2011)
    cluster_p.add_argument("--json", action="store_true",
                           help="print the full run ledger as JSON")

    query_p = sub.add_parser("query", help="run a continuous aggregate query")
    query_p.add_argument("--aggregate", default="SUM",
                         choices=[k.value for k in AggregateKind])
    query_p.add_argument("--where", default=None, help='predicate, e.g. "temperature>=20"')
    query_p.add_argument("--protocol", default="sies")
    query_p.add_argument("--sources", type=int, default=64)
    query_p.add_argument("--epochs", type=int, default=5)
    query_p.add_argument("--scale", type=int, default=100)
    query_p.add_argument("--seed", type=int, default=2011)

    attack_p = sub.add_parser("attack", help="mount an adversary")
    attack_p.add_argument("--attack", required=True, choices=("tamper", "drop", "replay"))
    attack_p.add_argument("--protocol", default="sies", choices=("sies", "cmt"))
    attack_p.add_argument("--sources", type=int, default=64)
    attack_p.add_argument("--epochs", type=int, default=5)
    attack_p.add_argument("--seed", type=int, default=2011)

    experiment_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment_p.add_argument("name", choices=_EXPERIMENTS)
    experiment_p.add_argument("--quick", action="store_true")

    bounds_p = sub.add_parser("bounds", help="Theorem 1-4 security bounds")
    bounds_p.add_argument("--sources", type=int, default=1024)
    bounds_p.add_argument("--value-bytes", type=int, default=4, choices=(4, 8))
    bounds_p.add_argument("--share-bytes", type=int, default=20)

    info_p = sub.add_parser("info", help="protocol registry and wire-format versions")
    info_p.add_argument("--json", action="store_true", help="machine-readable output")

    lint_p = sub.add_parser("lint", help="sieslint: AST-based invariant checker")
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--json", action="store_true", help="machine-readable output")
    lint_p.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    lint_p.add_argument("--baseline", default=None,
                        help="baseline JSON path (default: ./sieslint.baseline.json "
                             "when present)")
    lint_p.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring any baseline")
    lint_p.add_argument("--update-baseline", action="store_true",
                        help="snapshot current findings into the baseline and exit 0")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit (honors --json)")
    lint_p.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="analyse files in N parallel processes "
                             "(0 = one per CPU; default: serial)")
    lint_p.add_argument("--no-project", action="store_true",
                        help="skip the project-wide passes (interprocedural "
                             "secret-flow, SL010 wire contract)")
    lint_p.add_argument("--sarif", action="store_true",
                        help="emit a SARIF 2.1.0 document instead of text/JSON")
    lint_p.add_argument("--sarif-file", default=None, metavar="PATH",
                        help="also write a SARIF 2.1.0 document to PATH "
                             "(keeps the text report on stdout)")

    trace_p = sub.add_parser("trace", help="record, filter or diff unified event traces")
    trace_p.add_argument("--substrate", default="runtime",
                         choices=("network", "runtime", "cluster"),
                         help="which substrate to record (ignored with --input)")
    trace_p.add_argument("--input", default=None, metavar="PATH",
                         help="read a recorded JSON-lines trace instead of running")
    trace_p.add_argument("--output", default=None, metavar="PATH",
                         help="write the trace as JSON-lines to PATH")
    trace_p.add_argument("--epoch", type=int, default=None, help="only this epoch")
    trace_p.add_argument("--node", type=int, default=None,
                         help="only events this node sent or received")
    trace_p.add_argument("--edge", default=None, choices=("S-A", "A-A", "A-Q"),
                         help="only this edge class")
    trace_p.add_argument("--dispositions", action="store_true",
                         help="print the seed-determined disposition slice as JSON "
                              "instead of raw events")
    trace_p.add_argument("--diff", default=None, metavar="PATH",
                         help="diff against another recorded trace on the determined "
                              "slice; exit 1 on disagreement")
    trace_p.add_argument("--sequential", action="store_true",
                         help="runtime substrate: use the historical sequential fault "
                              "streams instead of the cluster-comparable keyed oracle")
    trace_p.add_argument("--protocol", default="sies", choices=sorted(available_protocols()))
    trace_p.add_argument("--sources", type=int, default=16)
    trace_p.add_argument("--fanout", type=int, default=4)
    trace_p.add_argument("--epochs", type=int, default=5)
    trace_p.add_argument("--loss", type=float, default=0.2)
    trace_p.add_argument("--duplicate", type=float, default=0.0)
    trace_p.add_argument("--scale", type=int, default=100)
    trace_p.add_argument("--seed", type=int, default=2011)

    metrics_p = sub.add_parser("metrics", help="export a run's ledger via the unified registry")
    metrics_p.add_argument("--substrate", default="runtime",
                           choices=("network", "runtime", "cluster"))
    metrics_p.add_argument("--format", default="prometheus", choices=("prometheus", "json"))
    metrics_p.add_argument("--protocol", default="sies", choices=sorted(available_protocols()))
    metrics_p.add_argument("--sources", type=int, default=16)
    metrics_p.add_argument("--fanout", type=int, default=4)
    metrics_p.add_argument("--epochs", type=int, default=5)
    metrics_p.add_argument("--loss", type=float, default=0.2)
    metrics_p.add_argument("--duplicate", type=float, default=0.0)
    metrics_p.add_argument("--scale", type=int, default=100)
    metrics_p.add_argument("--seed", type=int, default=2011)
    return parser


# ----------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed}
    if args.protocol == "secoa_s":
        kwargs["num_sketches"] = 50  # keep interactive runs snappy
    protocol = create_protocol(args.protocol, args.sources, **kwargs)
    workload = DomainScaledWorkload(args.sources, scale=args.scale, seed=args.seed)
    simulator = NetworkSimulator(
        protocol,
        build_complete_tree(args.sources, args.fanout),
        workload,
        SimulationConfig(num_epochs=args.epochs),
    )
    metrics = simulator.run()
    for em in metrics.epochs:
        if em.security_failure:
            print(f"epoch {em.epoch}: REJECTED ({em.security_failure})")
        else:
            if em.result is None:
                raise SimulationError(f"epoch {em.epoch} finished with neither result nor failure")
            tag = "verified" if em.result.verified else "UNVERIFIED"
            kind = "exact" if em.result.exact else "estimate"
            print(f"epoch {em.epoch}: {kind} result {em.result.value} ({tag})")
    print(f"\nmean source init : {metrics.mean_source_seconds() * 1e6:10.2f} us")
    print(f"mean merge       : {metrics.mean_aggregator_seconds() * 1e6:10.2f} us")
    print(f"mean evaluation  : {metrics.mean_querier_seconds() * 1e3:10.2f} ms")
    for edge in EdgeClass:
        print(f"bytes per {edge.value} msg : {metrics.traffic.mean_bytes_per_message(edge):10.0f}")
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    import json

    from repro.runtime import (
        FaultPlan,
        LinkProfile,
        RetransmitPolicy,
        RuntimeConfig,
        RuntimeSimulator,
    )

    kwargs = {"seed": args.seed}
    if args.protocol == "secoa_s":
        kwargs["num_sketches"] = 50
    protocol = create_protocol(args.protocol, args.sources, **kwargs)
    workload = DomainScaledWorkload(args.sources, scale=args.scale, seed=args.seed)
    config = RuntimeConfig(
        num_epochs=args.epochs,
        plan=FaultPlan(
            default_profile=LinkProfile(
                loss_rate=args.loss,
                latency=args.latency,
                duplicate_rate=args.duplicate,
            )
        ),
        policy=RetransmitPolicy(max_retries=args.max_retries, ack_timeout=args.ack_timeout),
        seed=args.seed,
    )
    simulator = RuntimeSimulator(
        protocol, build_complete_tree(args.sources, args.fanout), workload, config
    )
    metrics = simulator.run()
    if args.json:
        print(json.dumps(metrics.ledger(), indent=2))
        return 0

    for em in metrics.epochs:
        if em.security_failure:
            print(f"epoch {em.epoch}: LOST ({em.security_failure})")
            continue
        if em.result is None:
            raise SimulationError(f"epoch {em.epoch} finished with neither result nor failure")
        tag = "verified" if em.result.verified else "UNVERIFIED"
        if em.recovery.complete:
            detail = "all sources"
        else:
            lost = sorted(em.recovery.lost)
            detail = f"recovered {len(em.recovery.survivors)}/{args.sources}, lost {lost}"
        print(
            f"epoch {em.epoch}: result {em.result.value} ({tag}, {detail}, "
            f"latency {em.completion_latency:.1f})"
        )

    ledger = metrics.ledger()
    print(f"\ndelivery rate    : {metrics.delivery_rate():8.4f}")
    print(f"acceptance rate  : {metrics.acceptance_rate():8.4f}")
    print(f"retransmissions  : {metrics.retransmissions_total():8d}")
    for edge in EdgeClass:
        retries = metrics.transport.retransmissions.get(edge, 0)
        print(f"  on {edge.value} links : {retries:8d}")
    latency = ledger["latency"]
    print(
        "completion latency: "
        f"p50 {latency['p50']:.1f}  p90 {latency['p90']:.1f}  "
        f"p99 {latency['p99']:.1f}  max {latency['max']:.1f}"
    )
    print(f"events processed : {metrics.events_processed:8d}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import ClusterConfig, run_cluster
    from repro.runtime import FaultPlan, LinkProfile, RetransmitPolicy

    kwargs = {"seed": args.seed}
    if args.protocol == "secoa_s":
        kwargs["num_sketches"] = 50
    protocol = create_protocol(args.protocol, args.sources, **kwargs)
    workload = DomainScaledWorkload(args.sources, scale=args.scale, seed=args.seed)
    config = ClusterConfig(
        num_epochs=args.epochs,
        window=args.window,
        hold_time=args.hold_time,
        querier_slack=args.querier_slack,
        policy=RetransmitPolicy(
            max_retries=args.max_retries, ack_timeout=args.ack_timeout,
            backoff=1.5, jitter=0.25,
        ),
        plan=FaultPlan(
            default_profile=LinkProfile(loss_rate=args.loss, duplicate_rate=args.duplicate)
        ),
        seed=args.seed,
    )
    metrics = run_cluster(
        protocol, build_complete_tree(args.sources, args.fanout), workload, config
    )
    if args.json:
        print(json.dumps(metrics.ledger(), indent=2))
        return 0

    for em in metrics.epochs:
        if em.security_failure:
            print(f"epoch {em.epoch}: LOST ({em.security_failure})")
            continue
        if em.result is None:
            raise SimulationError(f"epoch {em.epoch} finished with neither result nor failure")
        tag = "verified" if em.result.verified else "UNVERIFIED"
        if em.recovery.complete:
            detail = "all sources"
        else:
            detail = f"recovered {len(em.recovery.survivors)}/{args.sources}"
        print(
            f"epoch {em.epoch}: result {em.result.value} ({tag}, {detail}, "
            f"{em.completion_latency * 1e3:.1f} ms)"
        )
    print(f"\ndelivery rate    : {metrics.delivery_rate():8.4f}")
    print(f"acceptance rate  : {metrics.acceptance_rate():8.4f}")
    print(f"retransmissions  : {metrics.traffic.total('retransmissions'):8d}")
    print(f"injected drops   : {metrics.traffic.total('drops_injected'):8d}")
    print(f"epochs per second: {metrics.epochs_per_second():8.1f}")
    print(f"frames per second: {metrics.frames_per_second():8.0f}")
    for edge in EdgeClass:
        counters = metrics.traffic.edge(edge)
        print(
            f"  {edge.value}: {counters.frames_sent:6d} frames, "
            f"{counters.envelope_bytes:8d} envelope B, {counters.psr_bytes:8d} PSR B"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import json

    from repro.protocols.registry import registered_wire_protocols
    from repro.wire.frame import HEADER_LEN, WIRE_VERSION

    facades = sorted(available_protocols())
    wire_ids = registered_wire_protocols()
    if args.json:
        print(
            json.dumps(
                {
                    "wire_version": WIRE_VERSION,
                    "header_len": HEADER_LEN,
                    "protocols": facades,
                    "wire_ids": wire_ids,
                },
                indent=2,
            )
        )
        return 0
    print(f"wire format      : version {WIRE_VERSION}, {HEADER_LEN}-byte header")
    print(f"protocol facades : {', '.join(facades)}")
    print("wire ids         :")
    for name, wire_id in sorted(wire_ids.items(), key=lambda item: item[1]):
        facade = "facade" if name in facades else "codec only"
        print(f"  {wire_id:3d}  {name}  ({facade})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    predicate = parse_predicate(args.where) if args.where else AlwaysTrue()
    query = Query(AggregateKind(args.aggregate), "temperature", predicate)
    print(query.sql())
    engine = ContinuousQuery(
        query, args.sources, protocol=args.protocol, scale=args.scale, seed=args.seed
    )
    for answer in engine.run(args.epochs):
        status = "verified" if answer.verified else (answer.security_failure or "unverified")
        value = "-" if answer.value is None else f"{answer.value:.4f}"
        print(f"epoch {answer.epoch}: {value}  [{status}]")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import AdditiveTamperAttack, DropAttack, ReplayAttack, run_attack_scenario

    protocol = create_protocol(args.protocol, args.sources, seed=args.seed)
    modulus = getattr(protocol, "p", None) or getattr(protocol, "n")
    attacks = {
        "tamper": lambda: AdditiveTamperAttack(delta=999_983, modulus=modulus),
        "drop": lambda: DropAttack(sender_ids=frozenset({0})),
        "replay": lambda: ReplayAttack(capture_epoch=1),
    }
    workload = DomainScaledWorkload(args.sources, scale=100, seed=args.seed)
    outcome = run_attack_scenario(
        protocol, attacks[args.attack](), workload, num_epochs=args.epochs
    )
    print(outcome.summary())
    for epoch, (reported, truth) in sorted(outcome.reported.items()):
        marker = "" if reported == truth else "   <-- WRONG, accepted"
        print(f"  epoch {epoch}: reported {reported}, truth {truth}{marker}")
    return 0 if not outcome.attack_succeeded_silently or args.protocol == "cmt" else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    if args.name == "run_all":
        module.main(["--quick"] if args.quick else [])
    else:
        module.main()
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    params = SIESParams(
        num_sources=args.sources,
        value_bytes=args.value_bytes,
        share_bytes=args.share_bytes,
    )
    bounds = bounds_for(params)
    print(f"N={args.sources}, value field {args.value_bytes} B, shares {args.share_bytes} B")
    print(f"modulus p        : {params.p.bit_length()} bits ({params.modulus_bytes} B PSRs)")
    print(f"confidentiality  : 2^{bounds.log2_confidentiality_break:.0f} per pad guess (Thm 1)")
    # The guess bound is public analysis output, not key material.
    guess = f"2^{bounds.log2_long_term_key_guess:.0f}"  # sieslint: disable=SL001
    print(f"long-term key    : {guess} per key guess (Thm 1)")
    print(f"integrity forgery: 2^{bounds.log2_integrity_forgery:.0f} per attempt (Thm 2)")
    print(f"replay collision : 2^{bounds.log2_replay_collision:.0f} per epoch pair (Thm 4)")
    print(f"meets paper margins: {bounds.meets_paper_defaults()}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.analysis import (
        Baseline,
        Severity,
        filter_new_findings,
        full_rule_catalog,
        lint_project,
        render_json,
        render_sarif,
        render_text,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE_NAME

    if args.list_rules:
        catalog = full_rule_catalog()
        if args.json:
            print(json_module.dumps(
                {
                    rule_id: {"severity": severity, "description": description}
                    for rule_id, (severity, description) in catalog.items()
                },
                indent=2,
            ))
        else:
            for rule_id, (severity, description) in catalog.items():
                print(f"{rule_id} [{severity}] {description}")
        return 0

    rules = [r.strip() for r in args.rules.split(",")] if args.rules else None
    findings = lint_project(
        args.paths, rules=rules, jobs=args.jobs, project=not args.no_project
    )

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"sieslint: wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    new, grandfathered = filter_new_findings(findings, baseline)

    if args.sarif_file:
        Path(args.sarif_file).write_text(
            render_sarif(findings, baseline=baseline) + "\n", encoding="utf-8"
        )
    if args.sarif:
        print(render_sarif(findings, baseline=baseline))
    else:
        print(render_json(new, grandfathered) if args.json
              else render_text(new, grandfathered))
    return 1 if any(f.severity == Severity.ERROR for f in new) else 0


def _run_observed(args: argparse.Namespace, recorder=None):
    """Run the substrate named by ``args.substrate``, optionally traced.

    Returns the run's native metrics object; when *recorder* is given,
    the matching obs adapter feeds it during the run.
    """
    from repro.obs import ChannelTraceAdapter, TransportTraceAdapter

    kwargs = {"seed": args.seed}
    if args.protocol == "secoa_s":
        kwargs["num_sketches"] = 50
    protocol = create_protocol(args.protocol, args.sources, **kwargs)
    workload = DomainScaledWorkload(args.sources, scale=args.scale, seed=args.seed)
    tree = build_complete_tree(args.sources, args.fanout)

    if args.substrate == "network":
        simulator = NetworkSimulator(
            protocol, tree, workload, SimulationConfig(num_epochs=args.epochs)
        )
        adapter = None
        if recorder is not None:
            adapter = ChannelTraceAdapter(recorder)
            adapter.attach(simulator.channel)
        try:
            return simulator.run()
        finally:
            if adapter is not None:
                adapter.detach()

    from repro.runtime import FaultPlan, LinkProfile

    plan = FaultPlan(
        default_profile=LinkProfile(loss_rate=args.loss, duplicate_rate=args.duplicate)
    )
    if args.substrate == "runtime":
        from repro.runtime import RuntimeConfig, RuntimeSimulator

        config = RuntimeConfig(
            num_epochs=args.epochs,
            plan=plan,
            seed=args.seed,
            keyed_faults=not getattr(args, "sequential", False),
        )
        simulator = RuntimeSimulator(protocol, tree, workload, config)
        if recorder is not None:
            simulator.set_observer(TransportTraceAdapter(recorder))
        return simulator.run()

    from repro.cluster import ClusterConfig, run_cluster

    config = ClusterConfig(
        num_epochs=args.epochs,
        plan=plan,
        seed=args.seed,
        observer=None if recorder is None else TransportTraceAdapter(recorder),
    )
    return run_cluster(protocol, tree, workload, config)


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import TraceRecorder, diff_traces

    if args.input:
        with open(args.input, encoding="utf-8") as stream:
            recorder = TraceRecorder.read_jsonl(stream)
    else:
        recorder = TraceRecorder(
            substrate=args.substrate, run_id=f"seed-{args.seed}"
        )
        _run_observed(args, recorder)

    if args.diff:
        with open(args.diff, encoding="utf-8") as stream:
            other = TraceRecorder.read_jsonl(stream)
        verdict = diff_traces(
            recorder.events,
            other.events,
            label_a=args.input or recorder.substrate,
            label_b=args.diff,
        )
        print(verdict.describe())
        return 0 if verdict.agrees else 1

    events = recorder.filter(epoch=args.epoch, node=args.node, edge=args.edge)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            for event in events:
                stream.write(event.to_json() + "\n")
        print(f"wrote {len(events)} event(s) to {args.output}")
        return 0
    if args.dispositions:
        from repro.obs import trace_dispositions

        slices = trace_dispositions(events)
        print(json.dumps({str(epoch): s for epoch, s in slices.items()}, indent=2))
        return 0
    for event in events:
        print(event.to_json())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        MetricsRegistry,
        publish_cluster_metrics,
        publish_network_metrics,
        publish_runtime_metrics,
    )

    metrics = _run_observed(args)
    registry = MetricsRegistry()
    publish = {
        "network": publish_network_metrics,
        "runtime": publish_runtime_metrics,
        "cluster": publish_cluster_metrics,
    }[args.substrate]
    publish(metrics, registry)
    if args.format == "json":
        print(json.dumps(registry.render_json(), indent=2))
    else:
        print(registry.render_prometheus(), end="")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "runtime": _cmd_runtime,
    "cluster": _cmd_cluster,
    "info": _cmd_info,
    "query": _cmd_query,
    "attack": _cmd_attack,
    "experiment": _cmd_experiment,
    "bounds": _cmd_bounds,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
