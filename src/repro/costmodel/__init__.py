"""Analytic cost models (paper Section V).

* :mod:`repro.costmodel.constants` — the Table II constants, both the
  paper's published values and values measured on this host;
* :mod:`repro.costmodel.microbench` — measures each constant here;
* :mod:`repro.costmodel.models` — Equations 1–11 for CPU cost per party
  and communication cost per edge, including the best/worst-case bounds
  the paper derives for SECOA_S;
* :mod:`repro.costmodel.tables` — evaluates the models into the paper's
  Table III and Table V rows.
"""

from repro.costmodel.constants import PAPER_CONSTANTS, PAPER_SIZES, CostConstants, WireSizes
from repro.costmodel.microbench import measure_constants
from repro.costmodel.models import (
    cmt_costs,
    secoa_bounds,
    secoas_costs,
    sies_costs,
)
from repro.costmodel.tables import evaluate_table3, evaluate_table5

__all__ = [
    "CostConstants",
    "WireSizes",
    "PAPER_CONSTANTS",
    "PAPER_SIZES",
    "measure_constants",
    "cmt_costs",
    "sies_costs",
    "secoas_costs",
    "secoa_bounds",
    "evaluate_table3",
    "evaluate_table5",
]
