"""Measure the Table II cost constants on this host.

Each primitive is timed exactly as the protocols execute it:

* ``C_HM1`` / ``C_HM256`` — one HMAC over a 20-byte key and the 8-byte
  epoch encoding (the protocols' actual input shape);
* ``C_A20`` / ``C_A32`` — one modular addition at 160 / 256 bits;
* ``C_M32`` / ``C_M128`` — one modular multiplication at 256 / 1024 bits;
* ``C_MI32`` — one extended-Euclid inverse at 256 bits;
* ``C_RSA`` — one raw RSA encryption (default exponent 3, matching the
  SEAL implementation — documented in DESIGN.md);
* ``C_sk`` — one per-item sketch insertion (hash + trailing zeros),
  i.e. the reference ``PER_ITEM`` strategy's unit cost.

Results are cached per process: experiments re-use one measurement.
"""

from __future__ import annotations

import random

from repro.baselines.secoa.sketch import item_level
from repro.costmodel.constants import CostConstants
from repro.crypto.hmac import HM1, HM256
from repro.crypto.modular import modinv
from repro.crypto.primes import next_prime
from repro.crypto.rsa import generate_rsa_keypair
from repro.utils.timing import time_operation

__all__ = ["measure_constants", "DEFAULT_REPEATS"]

DEFAULT_REPEATS = 5
_cache: dict[tuple[int, int, int], CostConstants] = {}


def measure_constants(
    *,
    repeat: int = DEFAULT_REPEATS,
    inner_loops: int = 200,
    rsa_exponent: int = 3,
    seed: int = 2011,
) -> CostConstants:
    """Micro-benchmark every Table II constant on this machine.

    Uses the median over *repeat* batches of *inner_loops* calls, which
    is robust to scheduler noise on shared hosts.
    """
    cache_key = (repeat, inner_loops, rsa_exponent)
    if cache_key in _cache:
        return _cache[cache_key]

    rng = random.Random(seed)
    key20 = rng.randbytes(20)
    epoch_msg = (12345).to_bytes(8, "big")

    p256 = next_prime(1 << 255)
    a256 = rng.getrandbits(255)
    b256 = rng.getrandbits(255)
    n160 = 1 << 160
    a160 = rng.getrandbits(159)
    b160 = rng.getrandbits(159)

    keypair = generate_rsa_keypair(1024, rng=rng, public_exponent=rsa_exponent)
    n1024 = keypair.public.n
    m1024 = rng.getrandbits(1020)
    m1024b = rng.getrandbits(1020)

    def timed(op) -> float:
        return time_operation(op, repeat=repeat, inner_loops=inner_loops).median

    constants = CostConstants(
        c_hm1=timed(lambda: HM1(key20, epoch_msg)),
        c_hm256=timed(lambda: HM256(key20, epoch_msg)),
        c_a20=timed(lambda: (a160 + b160) % n160),
        c_a32=timed(lambda: (a256 + b256) % p256),
        c_m32=timed(lambda: (a256 * b256) % p256),
        c_m128=timed(lambda: (m1024 * m1024b) % n1024),
        c_mi32=timed(lambda: modinv(a256, p256)),
        c_rsa=timed(lambda: keypair.public.encrypt(m1024)),
        c_sk=timed(lambda: item_level(7, 42)),
    )
    _cache[cache_key] = constants
    return constants
