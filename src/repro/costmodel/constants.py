"""Cost constants (the paper's Table II).

Two instances matter:

* :data:`PAPER_CONSTANTS` — the values the authors measured on their
  2.66 GHz Core i7 with C++/GMP/OpenSSL; used to *reproduce the paper's
  arithmetic* (Table III) exactly;
* the output of :func:`repro.costmodel.microbench.measure_constants` —
  the same primitives measured on this host with this library, used for
  the modeled-vs-measured validation of every figure.

:meth:`CostConstants.modeled_seconds` prices an
:class:`~repro.protocols.base.OpCounter`, turning executed operation
counts into model time — the bridge between simulation and Section V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.protocols.base import OpCounter

__all__ = ["CostConstants", "WireSizes", "PAPER_CONSTANTS", "PAPER_SIZES"]

_US = 1e-6  # one microsecond, in seconds


@dataclass(frozen=True)
class CostConstants:
    """Per-operation costs in **seconds** (Table II uses μs)."""

    c_sk: float      #: one sketch insertion (C_sk)
    c_rsa: float     #: one RSA encryption (C_RSA)
    c_hm1: float     #: one HMAC-SHA1 (C_HM1)
    c_hm256: float   #: one HMAC-SHA256 (C_HM256)
    c_a20: float     #: 20-byte modular addition (C_A20)
    c_a32: float     #: 32-byte modular addition (C_A32)
    c_m32: float     #: 32-byte modular multiplication (C_M32)
    c_m128: float    #: 128-byte modular multiplication (C_M128)
    c_mi32: float    #: 32-byte modular inverse (C_MI32)

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ParameterError(f"cost constant {name} must be non-negative")

    #: OpCounter operation name -> constant attribute.
    _OP_TO_CONSTANT = {
        "hm1": "c_hm1",
        "hm256": "c_hm256",
        "add20": "c_a20",
        "add32": "c_a32",
        "mul32": "c_m32",
        "mul128": "c_m128",
        "inv32": "c_mi32",
        "rsa": "c_rsa",
        "sketch": "c_sk",
    }

    def cost_of(self, op: str) -> float:
        try:
            return getattr(self, self._OP_TO_CONSTANT[op])
        except KeyError:
            raise ParameterError(f"no cost constant for operation {op!r}") from None

    def modeled_seconds(self, ops: OpCounter) -> float:
        """Price an operation ledger: Σ count(op) × constant(op)."""
        return sum(count * self.cost_of(op) for op, count in ops.counts.items())

    def as_microseconds(self) -> dict[str, float]:
        """Table II presentation form."""
        return {
            name: getattr(self, attr) / _US
            for name, attr in (
                ("C_sk", "c_sk"),
                ("C_RSA", "c_rsa"),
                ("C_HM1", "c_hm1"),
                ("C_HM256", "c_hm256"),
                ("C_A20", "c_a20"),
                ("C_A32", "c_a32"),
                ("C_M32", "c_m32"),
                ("C_M128", "c_m128"),
                ("C_MI32", "c_mi32"),
            )
        }


@dataclass(frozen=True)
class WireSizes:
    """Element sizes in bytes (Table II bottom rows)."""

    s_sk: int = 1       #: one sketch value (S_sk)
    s_inf: int = 20     #: one inflation certificate (S_inf)
    s_seal: int = 128   #: one SEAL (S_SEAL; 1024-bit RSA modulus)
    cmt_psr: int = 20   #: CMT ciphertext
    sies_psr: int = 32  #: SIES ciphertext


#: Table II "Typical Value" column (the authors' hardware).
PAPER_CONSTANTS = CostConstants(
    c_sk=0.037 * _US,
    c_rsa=5.36 * _US,
    c_hm1=0.46 * _US,
    c_hm256=1.02 * _US,
    c_a20=0.15 * _US,
    c_a32=0.37 * _US,
    c_m32=0.45 * _US,
    c_m128=1.39 * _US,
    c_mi32=3.2 * _US,
)

PAPER_SIZES = WireSizes()
