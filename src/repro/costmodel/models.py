"""Equations 1–11 of the paper (Section V).

Computational costs per party and communication costs per edge, for
CMT, SIES and SECOA_S.  SIES and CMT costs are data-independent; the
SECOA_S equations take the data-dependent quantities (``v``, sketch
values ``x_i``, rolling counts ``rl_i``, ``seals``, ``x_max``) either
as observed values (for validating against an execution) or as the
best/worst-case bounds the paper derives from the value domain:
``x_i ∈ [0, log(N·D_U)]`` (Section V, "Formulae evaluation").
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.costmodel.constants import CostConstants, WireSizes
from repro.errors import ParameterError
from repro.utils.validation import check_positive_int

__all__ = [
    "PartyCosts",
    "EdgeBytes",
    "SecoaBounds",
    "cmt_costs",
    "sies_costs",
    "secoas_costs",
    "secoa_bounds",
    "secoas_cost_bounds",
    "cmt_comm",
    "sies_comm",
    "secoas_comm",
    "secoas_comm_bounds",
]


@dataclass(frozen=True)
class PartyCosts:
    """Seconds of CPU per epoch at each party."""

    source: float
    aggregator: float
    querier: float


@dataclass(frozen=True)
class EdgeBytes:
    """Bytes per message on each edge class (the Table V columns)."""

    source_to_aggregator: int
    aggregator_to_aggregator: int
    aggregator_to_querier: int


@dataclass(frozen=True)
class SecoaBounds:
    """Domain-derived bounds on SECOA_S's data-dependent quantities.

    ``x_bound = ceil(log2(N · D_U))`` bounds every sketch value; rolling
    counts are bounded by ``floor(log2(N · D_U))`` per SEAL (the paper's
    Table II ranges: x_i ∈ [0, 23], rl_i ∈ [0, 22] at the defaults);
    the sink emits between 1 and ``x_bound + 1`` distinct-position SEALs.
    """

    x_bound: int
    rl_bound: int
    seals_min: int = 1

    @property
    def seals_max(self) -> int:
        return self.x_bound + 1


def secoa_bounds(num_sources: int, domain_upper: int) -> SecoaBounds:
    check_positive_int("num_sources", num_sources)
    check_positive_int("domain_upper", domain_upper)
    log_term = math.log2(num_sources * domain_upper)
    return SecoaBounds(x_bound=math.ceil(log_term), rl_bound=math.floor(log_term))


# ----------------------------------------------------------------------
# CMT (Eqs. 1, 4, 7)
# ----------------------------------------------------------------------


def cmt_costs(c: CostConstants, *, num_sources: int, fanout: int) -> PartyCosts:
    """CMT: Eq. 1 (source), Eq. 4 (aggregator), Eq. 7 (querier)."""
    check_positive_int("num_sources", num_sources)
    check_positive_int("fanout", fanout)
    return PartyCosts(
        source=c.c_hm1 + c.c_a20,
        aggregator=(fanout - 1) * c.c_a20,
        querier=num_sources * (c.c_hm1 + c.c_a20),
    )


# ----------------------------------------------------------------------
# SIES (Eqs. 3, 6, 9)
# ----------------------------------------------------------------------


def sies_costs(c: CostConstants, *, num_sources: int, fanout: int) -> PartyCosts:
    """SIES: Eq. 3 (source), Eq. 6 (aggregator), Eq. 9 (querier)."""
    check_positive_int("num_sources", num_sources)
    check_positive_int("fanout", fanout)
    n = num_sources
    return PartyCosts(
        source=2 * c.c_hm256 + c.c_hm1 + c.c_m32 + c.c_a32,
        aggregator=(fanout - 1) * c.c_a32,
        querier=(
            n * c.c_hm1
            + (n + 1) * c.c_hm256
            + (2 * n - 1) * c.c_a32
            + c.c_mi32
            + c.c_m32
        ),
    )


# ----------------------------------------------------------------------
# SECOA_S (Eqs. 2, 5, 8)
# ----------------------------------------------------------------------


def secoas_costs(
    c: CostConstants,
    *,
    num_sources: int,
    fanout: int,
    num_sketches: int,
    value: int,
    sketch_values: Sequence[int],
    aggregator_rolls: int,
    collected_seals: int,
    collected_rolls: int,
    x_max: int,
) -> PartyCosts:
    """SECOA_S with *observed* data-dependent quantities.

    ``sketch_values`` are one source's ``x_i``; ``aggregator_rolls`` is
    one aggregator's total rolling count (``Σ rl_i`` of Eq. 5);
    ``collected_seals``/``collected_rolls`` describe what the querier
    received (Eq. 8).
    """
    check_positive_int("num_sketches", num_sketches)
    if len(sketch_values) != num_sketches:
        raise ParameterError(
            f"expected {num_sketches} sketch values, got {len(sketch_values)}"
        )
    j = num_sketches
    n = num_sources
    source = j * (value * c.c_sk + 2 * c.c_hm1) + sum(sketch_values) * c.c_rsa  # Eq. 2
    aggregator = j * (fanout - 1) * c.c_m128 + aggregator_rolls * c.c_rsa  # Eq. 5
    querier = (  # Eq. 8
        j * n * c.c_hm1
        + (collected_seals + j * n - 2) * c.c_m128
        + (collected_rolls + x_max) * c.c_rsa
        + j * c.c_hm1
    )
    return PartyCosts(source=source, aggregator=aggregator, querier=querier)


def secoas_cost_bounds(
    c: CostConstants,
    *,
    num_sources: int,
    fanout: int,
    num_sketches: int,
    domain: tuple[int, int],
) -> tuple[PartyCosts, PartyCosts]:
    """Best/worst-case SECOA_S costs over any data distribution in *domain*.

    This reproduces the paper's "Formulae evaluation for typical values"
    and the error bars of Figure 4.
    """
    d_lower, d_upper = domain
    if not 0 < d_lower <= d_upper:
        raise ParameterError(f"invalid domain {domain}")
    bounds = secoa_bounds(num_sources, d_upper)
    minimum = secoas_costs(
        c,
        num_sources=num_sources,
        fanout=fanout,
        num_sketches=num_sketches,
        value=d_lower,
        sketch_values=[0] * num_sketches,
        aggregator_rolls=0,
        collected_seals=bounds.seals_min,
        collected_rolls=0,
        x_max=0,
    )
    maximum = secoas_costs(
        c,
        num_sources=num_sources,
        fanout=fanout,
        num_sketches=num_sketches,
        value=d_upper,
        sketch_values=[bounds.x_bound] * num_sketches,
        aggregator_rolls=num_sketches * bounds.rl_bound,
        collected_seals=bounds.seals_max,
        collected_rolls=bounds.seals_max * bounds.x_bound,
        x_max=bounds.x_bound,
    )
    return minimum, maximum


# ----------------------------------------------------------------------
# Communication (Section V; Eqs. 10, 11)
# ----------------------------------------------------------------------


def cmt_comm(sizes: WireSizes = WireSizes()) -> EdgeBytes:
    """CMT: one 20-byte ciphertext on every edge."""
    return EdgeBytes(sizes.cmt_psr, sizes.cmt_psr, sizes.cmt_psr)


def sies_comm(sizes: WireSizes = WireSizes()) -> EdgeBytes:
    """SIES: one 32-byte PSR on every edge."""
    return EdgeBytes(sizes.sies_psr, sizes.sies_psr, sizes.sies_psr)


def secoas_comm(
    num_sketches: int, collected_seals: int, sizes: WireSizes = WireSizes()
) -> EdgeBytes:
    """SECOA_S: Eq. 10 on internal edges, Eq. 11 at the sink."""
    check_positive_int("num_sketches", num_sketches)
    check_positive_int("collected_seals", collected_seals)
    internal = num_sketches * sizes.s_sk + num_sketches * sizes.s_seal + sizes.s_inf
    final = num_sketches * sizes.s_sk + collected_seals * sizes.s_seal + sizes.s_inf
    return EdgeBytes(internal, internal, final)


def secoas_comm_bounds(
    num_sources: int,
    domain_upper: int,
    num_sketches: int,
    sizes: WireSizes = WireSizes(),
) -> tuple[EdgeBytes, EdgeBytes]:
    """Min/max Eq. 10–11 traffic over any data distribution."""
    bounds = secoa_bounds(num_sources, domain_upper)
    return (
        secoas_comm(num_sketches, bounds.seals_min, sizes),
        secoas_comm(num_sketches, bounds.seals_max, sizes),
    )
