"""Evaluate the cost models into the paper's Table III and Table V.

Table III inserts the Table II typical values into Eqs. 1–11 at the
default parameters (N=1024, F=4, J=300, D=[1800,5000]).  Table V
reports the communication cost per edge — analytic for all schemes
(the paper's "actual" column for SECOA_S comes from an execution; the
experiment harness adds that from a simulation run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.constants import CostConstants, WireSizes
from repro.costmodel.models import (
    EdgeBytes,
    cmt_comm,
    cmt_costs,
    secoas_comm_bounds,
    secoas_cost_bounds,
    sies_comm,
    sies_costs,
)

__all__ = ["Table3Row", "Table3", "evaluate_table3", "Table5", "evaluate_table5", "DEFAULTS"]

#: The paper's default system parameters (Table IV).
DEFAULTS = {
    "num_sources": 1024,
    "fanout": 4,
    "domain": (1800, 5000),
    "num_sketches": 300,
}


@dataclass(frozen=True)
class Table3Row:
    """One metric across the three schemes (seconds or bytes)."""

    metric: str
    cmt: float
    secoa_min: float
    secoa_max: float
    sies: float


@dataclass(frozen=True)
class Table3:
    """The six Table III rows."""

    rows: tuple[Table3Row, ...]

    def row(self, metric: str) -> Table3Row:
        for row in self.rows:
            if row.metric == metric:
                return row
        raise KeyError(metric)


def evaluate_table3(
    constants: CostConstants,
    *,
    num_sources: int = DEFAULTS["num_sources"],
    fanout: int = DEFAULTS["fanout"],
    domain: tuple[int, int] = DEFAULTS["domain"],
    num_sketches: int = DEFAULTS["num_sketches"],
    sizes: WireSizes = WireSizes(),
) -> Table3:
    """Compute Table III from any constants (paper's or this host's)."""
    cmt = cmt_costs(constants, num_sources=num_sources, fanout=fanout)
    sies = sies_costs(constants, num_sources=num_sources, fanout=fanout)
    secoa_lo, secoa_hi = secoas_cost_bounds(
        constants,
        num_sources=num_sources,
        fanout=fanout,
        num_sketches=num_sketches,
        domain=domain,
    )
    comm_cmt = cmt_comm(sizes)
    comm_sies = sies_comm(sizes)
    comm_lo, comm_hi = secoas_comm_bounds(num_sources, domain[1], num_sketches, sizes)

    def cpu_row(metric: str, attr: str) -> Table3Row:
        return Table3Row(
            metric=metric,
            cmt=getattr(cmt, attr),
            secoa_min=getattr(secoa_lo, attr),
            secoa_max=getattr(secoa_hi, attr),
            sies=getattr(sies, attr),
        )

    def comm_row(metric: str, attr: str) -> Table3Row:
        return Table3Row(
            metric=metric,
            cmt=float(getattr(comm_cmt, attr)),
            secoa_min=float(getattr(comm_lo, attr)),
            secoa_max=float(getattr(comm_hi, attr)),
            sies=float(getattr(comm_sies, attr)),
        )

    return Table3(
        rows=(
            cpu_row("Comput. cost at S", "source"),
            cpu_row("Comput. cost at A", "aggregator"),
            cpu_row("Comput. cost at Q", "querier"),
            comm_row("Commun. cost S-A", "source_to_aggregator"),
            comm_row("Commun. cost A-A", "aggregator_to_aggregator"),
            comm_row("Commun. cost A-Q", "aggregator_to_querier"),
        )
    )


@dataclass(frozen=True)
class Table5:
    """Communication cost per edge (bytes), model view.

    The "actual" SECOA_S column requires an execution; the Table V
    experiment driver fills it from a simulation run.
    """

    cmt: EdgeBytes
    sies: EdgeBytes
    secoa_min: EdgeBytes
    secoa_max: EdgeBytes


def evaluate_table5(
    *,
    num_sources: int = DEFAULTS["num_sources"],
    domain: tuple[int, int] = DEFAULTS["domain"],
    num_sketches: int = DEFAULTS["num_sketches"],
    sizes: WireSizes = WireSizes(),
) -> Table5:
    lo, hi = secoas_comm_bounds(num_sources, domain[1], num_sketches, sizes)
    return Table5(cmt=cmt_comm(sizes), sies=sies_comm(sizes), secoa_min=lo, secoa_max=hi)
