"""Batched-pipeline throughput: sequential vs batched vs pooled.

Records end-to-end epochs/sec for the three execution modes of
:class:`~repro.network.simulator.NetworkSimulator` plus the isolated
querier amortization (cold vs warm key-schedule cache), giving the next
perf PR a trajectory baseline.  The differential harness guarantees all
modes produce bit-identical results, so any throughput delta here is
pure pipeline overhead/amortization.

Run with::

    PYTHONPATH=src pytest benchmarks/test_batched_querier.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SIESProtocol
from repro.datasets.workload import DomainScaledWorkload
from repro.experiments.common import build_final_psr
from repro.network.simulator import NetworkSimulator, SimulationConfig
from repro.network.topology import build_complete_tree

N = 256
EPOCHS = 16
WINDOW = 8
SEED = 2011


def _fresh_simulator() -> NetworkSimulator:
    protocol = SIESProtocol(N, seed=SEED)
    tree = build_complete_tree(N, fanout=4)
    workload = DomainScaledWorkload(N, scale=100, seed=SEED)
    return NetworkSimulator(protocol, tree, workload, SimulationConfig(num_epochs=EPOCHS))


def _bench_run(benchmark, run) -> None:
    state: dict[str, NetworkSimulator] = {}

    def setup():
        state["sim"] = _fresh_simulator()
        return (), {}

    def target():
        return run(state["sim"])

    metrics = benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)
    assert metrics.num_epochs == EPOCHS
    assert metrics.all_verified()
    benchmark.extra_info["epochs_per_second"] = (
        EPOCHS / benchmark.stats.stats.mean if benchmark.stats.stats.mean else float("inf")
    )


@pytest.mark.benchmark(group="batched-pipeline")
def test_sequential_pipeline(benchmark) -> None:
    _bench_run(benchmark, lambda sim: sim.run())


@pytest.mark.benchmark(group="batched-pipeline")
def test_batched_pipeline(benchmark) -> None:
    _bench_run(benchmark, lambda sim: sim.run_batched(window=WINDOW))


@pytest.mark.benchmark(group="batched-pipeline")
def test_batched_pipeline_pooled(benchmark) -> None:
    _bench_run(benchmark, lambda sim: sim.run_batched(window=WINDOW, max_workers=4))


# ----------------------------------------------------------------------
# Querier-only amortization: the KeyScheduleCache lever in isolation
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="batched-querier")
def test_querier_cold(benchmark) -> None:
    protocol = SIESProtocol(N, seed=SEED)
    workload = DomainScaledWorkload(N, scale=100, seed=SEED)
    finals = {
        epoch: build_final_psr(protocol, epoch, [workload(i, epoch) for i in range(N)])
        for epoch in range(1, EPOCHS + 1)
    }
    items = [(epoch, finals[epoch], None) for epoch in range(1, EPOCHS + 1)]
    querier = protocol.create_querier()
    benchmark.pedantic(querier.evaluate_many, args=(items,), rounds=3, iterations=1)


@pytest.mark.benchmark(group="batched-querier")
def test_querier_warm_cache(benchmark) -> None:
    protocol = SIESProtocol(N, seed=SEED)
    workload = DomainScaledWorkload(N, scale=100, seed=SEED)
    finals = {
        epoch: build_final_psr(protocol, epoch, [workload(i, epoch) for i in range(N)])
        for epoch in range(1, EPOCHS + 1)
    }
    items = [(epoch, finals[epoch], None) for epoch in range(1, EPOCHS + 1)]
    cache = protocol.create_key_cache(capacity=EPOCHS)
    querier = protocol.create_querier(key_cache=cache)
    cache.prefetch(range(1, EPOCHS + 1))  # amortized outside the timed region
    benchmark.pedantic(querier.evaluate_many, args=(items,), rounds=3, iterations=1)
