"""Table III — cost models at typical values (N=1024, F=4, J=300).

Benchmarks the model *evaluation* (cheap) and, more importantly,
asserts that the models at the paper's constants reproduce the printed
Table III and that the paper's headline cost orderings hold at this
host's constants too.
"""

from __future__ import annotations

import pytest

from repro.costmodel.constants import PAPER_CONSTANTS
from repro.costmodel.tables import evaluate_table3
from repro.experiments.paper_data import TABLE3_REPORTED


@pytest.mark.benchmark(group="table3")
def test_evaluate_table3_at_paper_constants(benchmark) -> None:
    table = benchmark(evaluate_table3, PAPER_CONSTANTS)
    assert len(table.rows) == 6


def test_reproduces_paper_table3_cells() -> None:
    table = evaluate_table3(PAPER_CONSTANTS)
    reported = TABLE3_REPORTED
    assert table.row("Comput. cost at A").sies == pytest.approx(
        reported["Comput. cost at A"]["sies"], rel=0.02
    )
    assert table.row("Comput. cost at Q").sies == pytest.approx(
        reported["Comput. cost at Q"]["sies"], rel=0.02
    )
    assert table.row("Comput. cost at S").secoa_min == pytest.approx(
        reported["Comput. cost at S"]["secoa_min"], rel=0.01
    )
    assert table.row("Comput. cost at S").secoa_max == pytest.approx(
        reported["Comput. cost at S"]["secoa_max"], rel=0.01
    )
    assert table.row("Commun. cost S-A").secoa_min == 38720
    assert table.row("Commun. cost A-Q").secoa_min == 448


def test_headline_orderings_hold_at_host_constants(host_constants) -> None:
    """SIES beats SECOA_S's best case on every metric; SIES is within a
    modest factor of CMT (the paper: 'marginally inferior')."""
    table = evaluate_table3(host_constants)
    for metric in ("Comput. cost at S", "Comput. cost at A", "Comput. cost at Q"):
        row = table.row(metric)
        assert row.sies < row.secoa_min, metric
        assert row.sies < 20 * row.cmt, metric
    for metric in ("Commun. cost S-A", "Commun. cost A-A", "Commun. cost A-Q"):
        row = table.row(metric)
        assert row.sies == 32 and row.cmt == 20
        assert row.secoa_min > 10 * row.sies


def test_sies_beats_secoa_by_orders_of_magnitude() -> None:
    """The paper's 'up to 4 orders of magnitude' claim, at its constants."""
    table = evaluate_table3(PAPER_CONSTANTS)
    source = table.row("Comput. cost at S")
    aggregator = table.row("Comput. cost at A")
    assert source.secoa_min / source.sies > 1e3
    assert source.secoa_max / source.sies > 1e4
    assert aggregator.secoa_min / aggregator.sies > 1e3
    comm = table.row("Commun. cost S-A")
    assert comm.secoa_min / comm.sies > 1e3
