"""Table II — per-primitive cost constants on this host.

Each benchmark measures one Table II symbol with pytest-benchmark;
the summary table printed by ``--benchmark-only`` *is* this host's
Table II column.  Comparison against the paper's values lives in
``python -m repro.experiments.table2``.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.secoa.sketch import item_level
from repro.crypto.hmac import HM1, HM256
from repro.crypto.modular import modinv
from repro.crypto.primes import next_prime
from repro.crypto.rsa import generate_rsa_keypair

_rng = random.Random(2011)
KEY20 = _rng.randbytes(20)
EPOCH = (12345).to_bytes(8, "big")
P256 = next_prime(1 << 255)
A256, B256 = _rng.getrandbits(255), _rng.getrandbits(255)
N160 = 1 << 160
A160, B160 = _rng.getrandbits(159), _rng.getrandbits(159)
RSA = generate_rsa_keypair(1024, rng=_rng, public_exponent=3)
M1024 = _rng.getrandbits(1020)
M1024B = _rng.getrandbits(1020)


@pytest.mark.benchmark(group="table2")
def test_c_hm1(benchmark) -> None:
    """C_HM1 — HMAC-SHA1 over the epoch encoding (paper: 0.46 us)."""
    benchmark(HM1, KEY20, EPOCH)


@pytest.mark.benchmark(group="table2")
def test_c_hm256(benchmark) -> None:
    """C_HM256 — HMAC-SHA256 (paper: 1.02 us)."""
    benchmark(HM256, KEY20, EPOCH)


@pytest.mark.benchmark(group="table2")
def test_c_a20(benchmark) -> None:
    """C_A20 — 20-byte modular addition (paper: 0.15 us)."""
    benchmark(lambda: (A160 + B160) % N160)


@pytest.mark.benchmark(group="table2")
def test_c_a32(benchmark) -> None:
    """C_A32 — 32-byte modular addition (paper: 0.37 us)."""
    benchmark(lambda: (A256 + B256) % P256)


@pytest.mark.benchmark(group="table2")
def test_c_m32(benchmark) -> None:
    """C_M32 — 32-byte modular multiplication (paper: 0.45 us)."""
    benchmark(lambda: (A256 * B256) % P256)


@pytest.mark.benchmark(group="table2")
def test_c_m128(benchmark) -> None:
    """C_M128 — 128-byte modular multiplication (paper: 1.39 us)."""
    benchmark(lambda: (M1024 * M1024B) % RSA.public.n)


@pytest.mark.benchmark(group="table2")
def test_c_mi32(benchmark) -> None:
    """C_MI32 — 32-byte modular inverse (paper: 3.2 us)."""
    benchmark(modinv, A256, P256)


@pytest.mark.benchmark(group="table2")
def test_c_rsa(benchmark) -> None:
    """C_RSA — one raw RSA encryption, e=3, 1024-bit (paper: 5.36 us)."""
    benchmark(RSA.public.encrypt, M1024)


@pytest.mark.benchmark(group="table2")
def test_c_sk(benchmark) -> None:
    """C_sk — one per-item sketch insertion (paper: 0.037 us)."""
    benchmark(item_level, 7, 42)


def test_host_constants_sane(host_constants) -> None:
    """Orderings any host must reproduce for the analysis to transfer."""
    assert host_constants.c_a32 < host_constants.c_hm1
    assert host_constants.c_rsa > host_constants.c_m128
