"""Ablation — secret-share width vs cost and detection probability.

Theorem 2's forgery probability is 2^-(8*share_bytes + pad_bits); the
paper fixes shares at 20 bytes.  Shorter shares keep the 32-byte PSR
(the 2^255 modulus floor) so the *communication* cost is unchanged —
the knob only trades security margin against nothing measurable, which
is exactly why the paper's choice of the full HM1 digest is free.  This
benchmark demonstrates that: cost flat in share size, detection still
perfect at every width for random tampering.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SIESProtocol
from repro.datasets.workload import UniformWorkload
from repro.errors import VerificationFailure

N = 64
WORKLOAD = UniformWorkload(N, 10, 1000, seed=4)
SHARE_SIZES = (4, 8, 20)


@pytest.mark.parametrize("share_bytes", SHARE_SIZES)
@pytest.mark.benchmark(group="ablation-share-size")
def test_source_cost_vs_share_size(benchmark, share_bytes: int) -> None:
    protocol = SIESProtocol(N, share_bytes=share_bytes, seed=5)
    source = protocol.create_source(0)
    state = {"epoch": 0}

    def run():
        state["epoch"] += 1
        return source.initialize(state["epoch"], WORKLOAD(0, state["epoch"]))

    benchmark.pedantic(run, rounds=20, iterations=1, warmup_rounds=2)


@pytest.mark.parametrize("share_bytes", SHARE_SIZES)
def test_wire_size_unchanged(share_bytes: int) -> None:
    assert SIESProtocol(N, share_bytes=share_bytes, seed=6).psr_bytes == 32


@pytest.mark.parametrize("share_bytes", SHARE_SIZES)
def test_detection_still_works(share_bytes: int) -> None:
    protocol = SIESProtocol(N, share_bytes=share_bytes, seed=7)
    psrs = [protocol.create_source(i).initialize(1, WORKLOAD(i, 1)) for i in range(N)]
    final = protocol.create_aggregator().merge(1, psrs)
    querier = protocol.create_querier()
    assert querier.evaluate(1, final).verified
    for delta in (1, 12345, protocol.p - 99):
        tampered = type(final)(
            ciphertext=(final.ciphertext + delta) % protocol.p, epoch=1, modulus_bytes=32
        )
        with pytest.raises(VerificationFailure):
            querier.evaluate(1, tampered)


def test_forgery_probability_scales_with_share_bits() -> None:
    """The security knob the ablation turns: the probability bound."""
    for share_bytes in SHARE_SIZES:
        protocol = SIESProtocol(N, share_bytes=share_bytes, seed=8)
        secret_bits = protocol.layout.secret_bits
        assert secret_bits == 8 * share_bytes + protocol.params.pad_bits
        # Theorem 2's bound: 2^32 / 2^256 at full width -> here:
        assert 2.0 ** -secret_bits < 1e-9 or share_bytes == 4
