"""Ablation — 4-byte vs 8-byte result field (paper footnote 1).

The paper notes that applications whose SUM exceeds 2^32 - 1 should use
an 8-byte field.  The wider field costs nothing measurable: the modulus
stays a 256-bit prime (so the PSR stays 32 bytes) and the per-party
operation counts are identical — this benchmark demonstrates both, plus
the functional difference (the capacities).
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SIESProtocol
from repro.datasets.workload import UniformWorkload
from repro.errors import LayoutError

N = 64
WORKLOAD = UniformWorkload(N, 10, 1000, seed=9)


@pytest.mark.parametrize("value_bytes", [4, 8])
@pytest.mark.benchmark(group="ablation-value-width")
def test_source_cost_vs_value_width(benchmark, value_bytes: int) -> None:
    protocol = SIESProtocol(N, value_bytes=value_bytes, seed=10)
    source = protocol.create_source(0)
    state = {"epoch": 0}

    def run():
        state["epoch"] += 1
        return source.initialize(state["epoch"], WORKLOAD(0, state["epoch"]))

    benchmark.pedantic(run, rounds=20, iterations=1, warmup_rounds=2)


@pytest.mark.parametrize("value_bytes", [4, 8])
@pytest.mark.benchmark(group="ablation-value-width")
def test_querier_cost_vs_value_width(benchmark, value_bytes: int) -> None:
    protocol = SIESProtocol(N, value_bytes=value_bytes, seed=11)
    psrs = [protocol.create_source(i).initialize(1, WORKLOAD(i, 1)) for i in range(N)]
    final = protocol.create_aggregator().merge(1, psrs)
    querier = protocol.create_querier()
    benchmark.pedantic(querier.evaluate, args=(1, final), rounds=10, iterations=1)


def test_wire_size_identical() -> None:
    assert SIESProtocol(N, value_bytes=4, seed=12).psr_bytes == 32
    assert SIESProtocol(N, value_bytes=8, seed=12).psr_bytes == 32


def test_capacity_difference_is_the_point() -> None:
    narrow = SIESProtocol(N, value_bytes=4, seed=13)
    wide = SIESProtocol(N, value_bytes=8, seed=13)
    assert narrow.params.max_result == 2**32 - 1
    assert wide.params.max_result == 2**64 - 1
    with pytest.raises(LayoutError):
        narrow.create_source(0).initialize(1, 2**32)
    big = 2**40
    psrs = [wide.create_source(i).initialize(1, big) for i in range(N)]
    final = wide.create_aggregator().merge(1, psrs)
    assert wide.create_querier().evaluate(1, final).value == N * big
