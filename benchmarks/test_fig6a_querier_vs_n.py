"""Figure 6(a) — computational cost at the querier vs. the number of sources.

Benchmarks one evaluation per scheme at N ∈ {64, 256, 1024} on valid
final PSRs (built outside the timed region; SECOA_S's synthesized
algebraically — identical to the network's output).  The N=4096/16384
points of the paper are covered by the linearity assertion plus the
``run_all`` experiment driver, which runs them at full scale.
"""

from __future__ import annotations

import pytest

from repro.baselines.cmt import CMTProtocol
from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.core.protocol import SIESProtocol
from repro.datasets.workload import DomainScaledWorkload
from repro.experiments.common import build_final_psr

J = 300
SEED = 2011
SOURCE_COUNTS = (64, 256, 1024)


def _bench_querier(benchmark, protocol, rounds: int) -> None:
    workload = DomainScaledWorkload(protocol.num_sources, scale=100, seed=SEED)
    querier = protocol.create_querier()
    finals = {
        epoch: build_final_psr(
            protocol, epoch, [workload(i, epoch) for i in range(protocol.num_sources)]
        )
        for epoch in range(1, rounds + 1)
    }
    state = {"epoch": 0}

    def setup():
        state["epoch"] = state["epoch"] % rounds + 1
        return (state["epoch"], finals[state["epoch"]]), {}

    benchmark.pedantic(querier.evaluate, setup=setup, rounds=rounds, iterations=1)


@pytest.mark.parametrize("n", SOURCE_COUNTS)
@pytest.mark.benchmark(group="fig6a-querier")
def test_sies_querier(benchmark, n: int) -> None:
    _bench_querier(benchmark, SIESProtocol(n, seed=SEED), rounds=5)


@pytest.mark.parametrize("n", SOURCE_COUNTS)
@pytest.mark.benchmark(group="fig6a-querier")
def test_cmt_querier(benchmark, n: int) -> None:
    _bench_querier(benchmark, CMTProtocol(n, seed=SEED), rounds=5)


@pytest.mark.parametrize("n", SOURCE_COUNTS)
@pytest.mark.benchmark(group="fig6a-querier")
def test_secoa_querier(benchmark, n: int) -> None:
    _bench_querier(benchmark, SECOASumProtocol(n, num_sketches=J, seed=SEED), rounds=2)


def test_fig6a_shape(host_constants) -> None:
    """Linearity in N and the >10x SIES-vs-SECOA gap (paper Section VI-C)."""
    import time

    def evaluate_time(protocol) -> float:
        workload = DomainScaledWorkload(protocol.num_sources, scale=100, seed=SEED)
        final = build_final_psr(
            protocol, 1, [workload(i, 1) for i in range(protocol.num_sources)]
        )
        querier = protocol.create_querier()
        start = time.perf_counter()
        querier.evaluate(1, final)
        return time.perf_counter() - start

    sies_256 = evaluate_time(SIESProtocol(256, seed=SEED))
    sies_1024 = evaluate_time(SIESProtocol(1024, seed=SEED))
    secoa_256 = evaluate_time(SECOASumProtocol(256, num_sketches=J, seed=SEED))
    # linear in N
    assert 2.0 < sies_1024 / sies_256 < 10.0
    # the paper's range claim: SIES querier within 0.15-36 ms across the
    # N sweep on its hardware; on ours the shape claim is the >10x gap.
    assert secoa_256 > 10 * sies_256
