"""Wire-codec throughput: encode/decode frames per second per protocol.

The codec layer sits on every simulated radio hop, so its throughput
bounds large-N simulation speed.  This benchmark measures raw
``encode`` and ``decode`` rates for each built-in codec at paper
parameters, plus the full channel round trip (encode → decode →
delivery) relative to the legacy object-passing channel, giving future
perf work a trajectory baseline for the serialization tax.

Run with::

    PYTHONPATH=src pytest benchmarks/test_wire_codec.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baselines.cmt import CMTProtocol
from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.core.protocol import SIESProtocol
from repro.network.channel import Channel, EdgeClass
from repro.network.messages import DataMessage

SEED = 2011
BATCH = 512
EPOCH = 1


def _sies_fixture():
    protocol = SIESProtocol(64, seed=SEED)
    psr = protocol.create_source(0).initialize(EPOCH, 1234)
    return protocol.wire_codec(), psr


def _cmt_fixture():
    protocol = CMTProtocol(64, seed=SEED)
    psr = protocol.create_source(0).initialize(EPOCH, 1234)
    return protocol.wire_codec(), psr


def _secoa_fixture():
    protocol = SECOASumProtocol(8, num_sketches=3, seed=SEED)
    psr = protocol.create_source(0).initialize(EPOCH, 1234)
    return protocol.wire_codec(), psr


FIXTURES = {
    "sies": _sies_fixture,
    "cmt": _cmt_fixture,
    "secoa_s": _secoa_fixture,
}


def _report_rate(benchmark, per_call_items: int) -> None:
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["frames_per_second"] = (
        per_call_items / mean if mean else float("inf")
    )


@pytest.mark.benchmark(group="wire-encode")
@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_encode_throughput(benchmark, name: str) -> None:
    codec, psr = FIXTURES[name]()

    def encode_batch():
        for _ in range(BATCH):
            codec.encode(psr)

    benchmark.pedantic(encode_batch, rounds=5, iterations=1)
    _report_rate(benchmark, BATCH)


@pytest.mark.benchmark(group="wire-decode")
@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_decode_throughput(benchmark, name: str) -> None:
    codec, psr = FIXTURES[name]()
    frame = codec.encode(psr)

    def decode_batch():
        for _ in range(BATCH):
            codec.decode(frame)

    decoded = benchmark.pedantic(decode_batch, rounds=5, iterations=1)
    assert decoded is None
    assert codec.decode(frame).epoch == psr.epoch
    _report_rate(benchmark, BATCH)


@pytest.mark.benchmark(group="wire-channel")
@pytest.mark.parametrize("mode", ["codec", "legacy"])
def test_channel_roundtrip_tax(benchmark, mode: str) -> None:
    """Full transmit() path: the per-hop cost the simulators pay."""
    protocol = SIESProtocol(64, seed=SEED)
    psr = protocol.create_source(0).initialize(EPOCH, 1234)
    channel = Channel(codec=protocol.wire_codec() if mode == "codec" else None)
    message = DataMessage(0, 1, EPOCH, psr)

    def transmit_batch():
        for _ in range(BATCH):
            channel.transmit(message, EdgeClass.SOURCE_TO_AGGREGATOR)

    benchmark.pedantic(transmit_batch, rounds=5, iterations=1)
    _report_rate(benchmark, BATCH)
