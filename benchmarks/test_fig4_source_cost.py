"""Figure 4 — computational cost at the source vs. the domain.

Benchmarks one source initialization per scheme at the default domain
(×100) and at the extremes (×1, ×10⁴ where tractable), and asserts the
figure's shape: SIES/CMT flat and in the microseconds; SECOA_S orders
of magnitude above and growing with the domain.

SECOA_S runs at the paper's J=300 with the per-item reference strategy
where the insertion count allows, and closed-form elsewhere (the
J·v·C_sk term is then priced by the cost model — see DESIGN.md §5).
"""

from __future__ import annotations

import pytest

from repro.baselines.cmt import CMTProtocol
from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.baselines.secoa.sketch import SketchStrategy
from repro.core.protocol import SIESProtocol
from repro.costmodel.models import secoas_cost_bounds
from repro.datasets.workload import DomainScaledWorkload, domain_for_scale

N = 1024
J = 300
SEED = 2011


def _workload(scale: int) -> DomainScaledWorkload:
    return DomainScaledWorkload(N, scale=scale, seed=SEED)


def _bench_source(benchmark, protocol, scale: int, rounds: int = 5):
    workload = _workload(scale)
    source = protocol.create_source(0)
    state = {"epoch": 0}

    def run():
        state["epoch"] += 1
        return source.initialize(state["epoch"], workload(0, state["epoch"]))

    return benchmark.pedantic(run, rounds=rounds, iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig4-domain-x100")
def test_sies_source_default_domain(benchmark) -> None:
    _bench_source(benchmark, SIESProtocol(N, seed=SEED), 100, rounds=50)
    assert benchmark.stats.stats.mean < 1e-3  # microsecond regime


@pytest.mark.benchmark(group="fig4-domain-x100")
def test_cmt_source_default_domain(benchmark) -> None:
    _bench_source(benchmark, CMTProtocol(N, seed=SEED), 100, rounds=50)
    assert benchmark.stats.stats.mean < 1e-3


@pytest.mark.benchmark(group="fig4-domain-x100")
def test_secoa_source_default_domain_per_item(benchmark) -> None:
    """The honest reference path: J*v ≈ 1M insertions per epoch."""
    protocol = SECOASumProtocol(
        N, num_sketches=J, seed=SEED, strategy=SketchStrategy.PER_ITEM
    )
    _bench_source(benchmark, protocol, 100, rounds=3)


@pytest.mark.benchmark(group="fig4-domain-x1")
def test_sies_source_smallest_domain(benchmark) -> None:
    _bench_source(benchmark, SIESProtocol(N, seed=SEED), 1, rounds=50)


@pytest.mark.benchmark(group="fig4-domain-x1")
def test_secoa_source_smallest_domain_per_item(benchmark) -> None:
    protocol = SECOASumProtocol(
        N, num_sketches=J, seed=SEED, strategy=SketchStrategy.PER_ITEM
    )
    _bench_source(benchmark, protocol, 1, rounds=3)


@pytest.mark.benchmark(group="fig4-domain-x10000")
def test_sies_source_largest_domain(benchmark) -> None:
    _bench_source(benchmark, SIESProtocol(N, seed=SEED), 10000, rounds=50)


@pytest.mark.benchmark(group="fig4-domain-x10000")
def test_secoa_source_largest_domain_closed_form(benchmark) -> None:
    """Fast path only (per-item would take minutes per call here);
    the sketch term is covered by the model assertion below."""
    protocol = SECOASumProtocol(
        N, num_sketches=J, seed=SEED, strategy=SketchStrategy.CLOSED_FORM
    )
    _bench_source(benchmark, protocol, 10000, rounds=3)


def test_fig4_shape_flat_sies_growing_secoa(host_constants) -> None:
    """The figure's shape, via the models priced at host constants."""
    per_scale = {}
    for scale in (1, 10, 100, 1000, 10000):
        lo, hi = secoas_cost_bounds(
            host_constants, num_sources=N, fanout=4, num_sketches=J,
            domain=domain_for_scale(scale),
        )
        per_scale[scale] = (lo.source, hi.source)
    # SECOA_S grows ~linearly in D...
    assert per_scale[10000][0] > 50 * per_scale[10][0]
    assert per_scale[100][1] > per_scale[1][1]
    # ...while SIES is domain-independent by construction and 2+ orders
    # below SECOA's best case at the default domain.
    from repro.costmodel.models import sies_costs

    sies = sies_costs(host_constants, num_sources=N, fanout=4).source
    assert per_scale[100][0] > 100 * sies
