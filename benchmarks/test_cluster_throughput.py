"""TCP cluster throughput: epochs/sec and frames/sec over real sockets.

The cluster trades the logical runtime's zero-cost links for real
kernel round trips, so the perf record tracks two quantities:

* **epochs/sec** — end-to-end pipeline throughput.  The window sweep
  shows what epoch pipelining buys: with ``window=1`` each epoch pays
  its full hold-and-wait ladder alone; with ``window=8`` eight ladders
  overlap and throughput approaches ``window / ladder``.
* **frames/sec** — socket-layer throughput (data envelopes + ACKs),
  the cost side of the ARQ under seeded loss.

Run with::

    PYTHONPATH=src pytest benchmarks/test_cluster_throughput.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, run_cluster
from repro.core.protocol import SIESProtocol
from repro.datasets.workload import DomainScaledWorkload
from repro.network.topology import build_complete_tree
from repro.runtime import FaultPlan

N = 64
EPOCHS = 25
SEED = 2011
#: Short rungs keep the benchmark honest about *throughput* rather than
#: the configured hold ladder; 0.15 s still clears the ARQ's ≈0.10 s
#: worst delivered wait.
HOLD = dict(hold_time=0.15, querier_slack=0.15)


def _run(window: int, loss: float):
    config = ClusterConfig(
        num_epochs=EPOCHS,
        window=window,
        seed=SEED,
        plan=FaultPlan.lossless() if loss == 0.0 else FaultPlan.uniform_loss(loss),
        **HOLD,
    )
    return run_cluster(
        SIESProtocol(N, seed=SEED),
        build_complete_tree(N, 4),
        DomainScaledWorkload(N, scale=100, seed=SEED),
        config,
    )


@pytest.mark.benchmark(group="cluster-throughput")
@pytest.mark.parametrize("window", [1, 8])
def test_cluster_throughput_lossless(benchmark, window: int) -> None:
    metrics = benchmark.pedantic(lambda: _run(window, 0.0), rounds=2, iterations=1)
    assert metrics.acceptance_rate() == 1.0
    benchmark.extra_info["window"] = window
    benchmark.extra_info["epochs_per_second"] = metrics.epochs_per_second()
    benchmark.extra_info["frames_per_second"] = metrics.frames_per_second()


@pytest.mark.benchmark(group="cluster-throughput-lossy")
@pytest.mark.parametrize("window", [1, 8])
def test_cluster_throughput_20_percent_loss(benchmark, window: int) -> None:
    metrics = benchmark.pedantic(lambda: _run(window, 0.2), rounds=2, iterations=1)
    assert metrics.num_epochs == EPOCHS
    benchmark.extra_info["window"] = window
    benchmark.extra_info["epochs_per_second"] = metrics.epochs_per_second()
    benchmark.extra_info["frames_per_second"] = metrics.frames_per_second()
    benchmark.extra_info["retransmissions"] = metrics.traffic.total("retransmissions")
    benchmark.extra_info["delivery_rate"] = metrics.delivery_rate()
