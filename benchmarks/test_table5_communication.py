"""Table V — communication cost per network edge.

Byte counts are analytic, so the "benchmark" here is primarily a
regeneration-with-assertions of the table at the paper's parameters
(N=1024, F=4, D=[1800,5000], J=300), including SECOA_S's *actual* A–Q
size from synthesized sink output across epochs.
"""

from __future__ import annotations

import pytest

from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.core.protocol import SIESProtocol
from repro.baselines.cmt import CMTProtocol
from repro.costmodel.models import secoas_comm_bounds
from repro.datasets.workload import DomainScaledWorkload
from repro.experiments.common import build_final_psr

N = 1024
J = 300
SEED = 2011


@pytest.fixture(scope="module")
def secoa_finals():
    protocol = SECOASumProtocol(N, num_sketches=J, seed=SEED)
    workload = DomainScaledWorkload(N, scale=100, seed=SEED)
    finals = [
        build_final_psr(protocol, epoch, [workload(i, epoch) for i in range(N)])
        for epoch in range(1, 6)
    ]
    return protocol, finals


@pytest.mark.benchmark(group="table5")
def test_secoa_sink_finalization_cost(benchmark, secoa_finals) -> None:
    """The sink's fold-by-position step that shrinks the A-Q message."""
    protocol, _ = secoa_finals
    workload = DomainScaledWorkload(N, scale=100, seed=SEED)
    sources = [protocol.create_source(i) for i in range(4)]
    aggregator = protocol.create_aggregator()
    merged = aggregator.merge(1, [s.initialize(1, workload(s.source_id, 1)) for s in sources])
    benchmark.pedantic(aggregator.finalize_for_querier, args=(merged,), rounds=3, iterations=1)


def test_sies_and_cmt_rows() -> None:
    assert SIESProtocol(N, seed=SEED).psr_bytes == 32
    assert CMTProtocol(N, seed=SEED).psr_bytes == 20


def test_secoa_internal_edges_match_paper() -> None:
    protocol = SECOASumProtocol(N, num_sketches=J, seed=SEED)
    psr = protocol.create_source(0).initialize(1, 1800)
    assert psr.wire_size() == 300 * 1 + 300 * 128 + 20 == 38720  # 37.8 KB


def test_secoa_final_edge_within_model_envelope(secoa_finals) -> None:
    _, finals = secoa_finals
    lo, hi = secoas_comm_bounds(N, 5000, J)
    sizes = [f.wire_size() for f in finals]
    actual = sum(sizes) / len(sizes)
    assert lo.aggregator_to_querier <= actual <= hi.aggregator_to_querier
    # the paper's 'actual' cell is 832 B; ours lands in the same few-KB
    # regime, far below the 37.8 KB internal edges
    assert actual < 5000
    # and the sink really did fold: far fewer than J SEALs left
    assert all(len(f.seals) < J / 5 for f in finals)


def test_edge_ordering_cmt_sies_secoa() -> None:
    lo, _ = secoas_comm_bounds(N, 5000, J)
    assert 20 < 32 < lo.aggregator_to_querier < lo.source_to_aggregator
