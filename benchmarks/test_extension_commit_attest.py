"""Extension benchmark — commit-and-attest vs SIES at scale.

Quantifies the paper's Section II-B scalability argument (see
``repro.experiments.extension_scalability``): per-epoch CPU of the
commit/attest phases and the communication blow-up relative to SIES's
constant 32-byte edges.
"""

from __future__ import annotations

import pytest

from repro.baselines.commit_attest import (
    CommitAttestProtocol,
    CommitAttestSimulation,
    CommitmentTree,
)
from repro.experiments.extension_scalability import run as run_extension
from repro.network.topology import build_complete_tree

SEED = 2011


@pytest.mark.parametrize("n", [64, 256, 1024])
@pytest.mark.benchmark(group="extension-commit-attest")
def test_commitment_tree_build(benchmark, n: int) -> None:
    values = [1800 + i % 3200 for i in range(n)]
    benchmark.pedantic(CommitmentTree, args=(values, 1), rounds=5, iterations=1)


@pytest.mark.parametrize("n", [64, 256])
@pytest.mark.benchmark(group="extension-commit-attest")
def test_full_epoch(benchmark, n: int) -> None:
    protocol = CommitAttestProtocol(n, seed=SEED)
    sim = CommitAttestSimulation(protocol, build_complete_tree(n, 4))
    values = [1800 + i % 3200 for i in range(n)]
    state = {"epoch": 0}

    def run():
        state["epoch"] += 1
        return sim.run_epoch(state["epoch"], values)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.verified


def test_scalability_series_shape() -> None:
    report = run_extension(source_counts=(64, 256, 1024))
    series = report.data["series"]
    # SIES's hottest edge is constant; commit-and-attest's grows ~N log N
    assert series["sies_max_edge"] == [32.0, 32.0, 32.0]
    assert series["ca_max_edge"][1] > 4 * series["ca_max_edge"][0]
    assert series["ca_max_edge"][2] > 4 * series["ca_max_edge"][1]
    # total traffic gap widens with N
    ratio_small = series["ca_total"][0] / series["sies_total"][0]
    ratio_large = series["ca_total"][2] / series["sies_total"][2]
    assert ratio_large > 2 * ratio_small
