"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one paper table/figure (plus ablations beyond
the paper).  Heavy protocol operations use ``benchmark.pedantic`` with
a few rounds — SECOA_S's source phase takes *seconds* per call at the
paper's parameters, which is precisely the point being measured.
"""

from __future__ import annotations

import pytest

from repro.costmodel.microbench import measure_constants
from repro.datasets.workload import DomainScaledWorkload


@pytest.fixture(scope="session")
def host_constants():
    """This host's Table II constants (measured once per session)."""
    return measure_constants()


@pytest.fixture(scope="session")
def paper_default_workload():
    """N=1024 sources over the default domain [1800, 5000]."""
    return DomainScaledWorkload(1024, scale=100, seed=2011)
