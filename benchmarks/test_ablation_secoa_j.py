"""Ablation — SECOA_S's sketch count J (accuracy/cost trade-off).

The paper fixes J=300 to bound the relative error within 10% w.p. 90%
(following [8]).  This ablation sweeps J and shows what the paper
buys/pays: source cost and internal-edge bytes scale linearly in J,
while the SUM estimate tightens — making explicit why SIES's *exact*
32-byte answers dominate the entire trade-off curve.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.baselines.secoa.sketch import SketchStrategy, estimate_sum, sample_sketch_level
from repro.datasets.workload import UniformWorkload

N = 256
WORKLOAD = UniformWorkload(N, 1800, 5000, seed=14)
J_SWEEP = (30, 100, 300)


@pytest.mark.parametrize("j", J_SWEEP)
@pytest.mark.benchmark(group="ablation-secoa-j")
def test_source_cost_vs_j(benchmark, j: int) -> None:
    protocol = SECOASumProtocol(
        N, num_sketches=j, seed=15, strategy=SketchStrategy.CLOSED_FORM
    )
    source = protocol.create_source(0)
    state = {"epoch": 0}

    def run():
        state["epoch"] += 1
        return source.initialize(state["epoch"], WORKLOAD(0, state["epoch"]))

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("j", J_SWEEP)
def test_internal_bytes_scale_linearly(j: int) -> None:
    protocol = SECOASumProtocol(N, num_sketches=j, seed=16)
    psr = protocol.create_source(0).initialize(1, 2000)
    assert psr.wire_size() == j * 1 + j * 128 + 20


def test_estimate_tightens_with_j() -> None:
    """Mean absolute relative error decreases as J grows."""
    true_count = 100_000
    errors_by_j = {}
    for j in J_SWEEP:
        errors = []
        for trial in range(8):
            levels = [
                sample_sketch_level(
                    true_count, strategy=SketchStrategy.CLOSED_FORM,
                    seed=17 + trial, labels=(str(j), str(sketch)),
                )
                for sketch in range(j)
            ]
            estimate = estimate_sum(levels)
            errors.append(abs(estimate - true_count) / true_count)
        errors_by_j[j] = statistics.fmean(errors)
    # J=300 must be materially tighter than J=30 (allowing for the
    # estimator's constant bias, which J cannot remove)
    assert errors_by_j[300] <= errors_by_j[30] + 0.05


def test_sies_dominates_every_point_of_the_tradeoff(host_constants) -> None:
    from repro.costmodel.models import secoas_cost_bounds, sies_costs

    sies = sies_costs(host_constants, num_sources=N, fanout=4)
    for j in J_SWEEP:
        lo, _ = secoas_cost_bounds(
            host_constants, num_sources=N, fanout=4, num_sketches=j, domain=(1800, 5000)
        )
        assert lo.source > 10 * sies.source  # even at J=30, approximate loses
