"""Figure 5 — computational cost at the aggregator vs. the fanout.

Benchmarks one merge per scheme at F ∈ {2, 4, 6} (paper sweeps 2-6)
with child PSRs prepared outside the timed region, and asserts the
figure's shape: costs linear in F, SIES in the microseconds, SECOA_S
roughly two orders of magnitude above.
"""

from __future__ import annotations

import pytest

from repro.baselines.cmt import CMTProtocol
from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.core.protocol import SIESProtocol
from repro.datasets.workload import DomainScaledWorkload

N = 1024
J = 300
SEED = 2011
WORKLOAD = DomainScaledWorkload(N, scale=100, seed=SEED)  # D = [1800, 5000]


def _bench_merge(benchmark, protocol, fanout: int, rounds: int):
    sources = [protocol.create_source(i) for i in range(fanout)]
    aggregator = protocol.create_aggregator()
    state = {"epoch": 0}

    def setup():
        state["epoch"] += 1
        epoch = state["epoch"]
        psrs = [s.initialize(epoch, WORKLOAD(s.source_id, epoch)) for s in sources]
        return (epoch, psrs), {}

    benchmark.pedantic(aggregator.merge, setup=setup, rounds=rounds, iterations=1)


@pytest.mark.parametrize("fanout", [2, 4, 6])
@pytest.mark.benchmark(group="fig5-aggregator")
def test_sies_aggregator(benchmark, fanout: int) -> None:
    _bench_merge(benchmark, SIESProtocol(N, seed=SEED), fanout, rounds=30)
    assert benchmark.stats.stats.mean < 1e-3


@pytest.mark.parametrize("fanout", [2, 4, 6])
@pytest.mark.benchmark(group="fig5-aggregator")
def test_cmt_aggregator(benchmark, fanout: int) -> None:
    _bench_merge(benchmark, CMTProtocol(N, seed=SEED), fanout, rounds=30)


@pytest.mark.parametrize("fanout", [2, 4, 6])
@pytest.mark.benchmark(group="fig5-aggregator")
def test_secoa_aggregator(benchmark, fanout: int) -> None:
    protocol = SECOASumProtocol(N, num_sketches=J, seed=SEED)
    _bench_merge(benchmark, protocol, fanout, rounds=3)


def test_fig5_shape() -> None:
    """Linear growth in F and the SIES-vs-SECOA gap, measured directly."""
    import time

    def merge_time(protocol, fanout: int, epochs: int = 5) -> float:
        sources = [protocol.create_source(i) for i in range(fanout)]
        aggregator = protocol.create_aggregator()
        total = 0.0
        for epoch in range(1, epochs + 1):
            psrs = [s.initialize(epoch, WORKLOAD(s.source_id, epoch)) for s in sources]
            start = time.perf_counter()
            aggregator.merge(epoch, psrs)
            total += time.perf_counter() - start
        return total / epochs

    sies = SIESProtocol(N, seed=SEED)
    secoa = SECOASumProtocol(N, num_sketches=J, seed=SEED)
    sies_f2, sies_f6 = merge_time(sies, 2), merge_time(sies, 6)
    secoa_f2, secoa_f6 = merge_time(secoa, 2, epochs=2), merge_time(secoa, 6, epochs=2)
    # growth with F (SECOA's folding count is exactly J*(F-1))
    assert secoa_f6 > 1.5 * secoa_f2
    # the gap at F=4-ish scale: ~2 orders of magnitude (paper's claim)
    assert secoa_f2 > 100 * sies_f2
    assert sies_f6 < 1e-3
