"""Substrate benchmarks: μTesla, Merkle trees, key schedules, Paillier.

Not paper figures — these price the building blocks the protocols stand
on, so regressions in any substrate are caught before they distort the
table/figure benchmarks above.
"""

from __future__ import annotations

import random

import pytest

from repro.core.keys import SIESKeyMaterial
from repro.core.params import SIESParams
from repro.crypto.keychain import OneWayKeyChain, verify_disclosed_key
from repro.crypto.merkle import MerkleTree, verify_merkle_path
from repro.crypto.paillier import generate_paillier_keypair
from repro.network.broadcast import MuTeslaBroadcaster, MuTeslaReceiver

ROOT = b"\x13" * 32


@pytest.mark.benchmark(group="substrate-mutesla")
def test_keychain_generation(benchmark) -> None:
    """Building a 1024-link chain (querier, once per deployment)."""
    benchmark.pedantic(OneWayKeyChain, args=(ROOT, 1024), rounds=5, iterations=1)


@pytest.mark.benchmark(group="substrate-mutesla")
def test_disclosed_key_verification_gap_32(benchmark) -> None:
    """Receiver-side verification across a 32-interval gap."""
    chain = OneWayKeyChain(ROOT, 64)
    key = chain.key(32)
    result = benchmark(verify_disclosed_key, key, 32, chain.commitment)
    assert result


@pytest.mark.benchmark(group="substrate-mutesla")
def test_broadcast_and_authenticate(benchmark) -> None:
    """One packet's full path: MAC, buffer, disclose, verify."""
    broadcaster = MuTeslaBroadcaster(ROOT, 4096)
    state = {"interval": 0}

    def round_trip():
        state["interval"] += 1
        i = state["interval"]
        receiver = MuTeslaReceiver(broadcaster.commitment)
        packet = broadcaster.broadcast(b"SELECT SUM(t) ...", i)
        receiver.receive(packet, current_interval=i)
        # verify against the commitment (gap = i) — worst-case receiver
        return receiver.on_key_disclosed(i, broadcaster.disclose(i))

    result = benchmark.pedantic(round_trip, rounds=20, iterations=1)
    assert result


@pytest.mark.parametrize("n", [256, 1024])
@pytest.mark.benchmark(group="substrate-merkle")
def test_merkle_build(benchmark, n: int) -> None:
    leaves = [i.to_bytes(4, "big") for i in range(n)]
    tree = benchmark(MerkleTree, leaves)
    assert tree.num_leaves == n


@pytest.mark.benchmark(group="substrate-merkle")
def test_merkle_path_verify(benchmark) -> None:
    leaves = [i.to_bytes(4, "big") for i in range(1024)]
    tree = MerkleTree(leaves)
    path = tree.path(777)
    assert benchmark(verify_merkle_path, leaves[777], path, tree.root)


@pytest.mark.benchmark(group="substrate-keys")
def test_sies_setup_phase_1024(benchmark) -> None:
    """Key generation for a 1024-source deployment (the setup phase)."""
    params = SIESParams(num_sources=1024)
    state = {"seed": 0}

    def setup():
        state["seed"] += 1
        return SIESKeyMaterial.generate(1024, params.p, seed=state["seed"])

    benchmark.pedantic(setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="substrate-paillier")
def test_paillier_encrypt(benchmark) -> None:
    """The public-key alternative's per-value cost (ODB model) — orders
    above the SIES source's few microseconds, which is the point."""
    keypair = generate_paillier_keypair(bits=1024, rng=random.Random(1))
    rng = random.Random(2)
    benchmark.pedantic(
        lambda: keypair.public.encrypt(12345, rng), rounds=5, iterations=1
    )
