"""Observability tax: what tracing and profiling cost the hot paths.

The obs layer is strictly opt-in — no observer, no overhead — so this
benchmark quantifies the two costs a user *does* pay when they turn it
on:

* the per-phase profiler's context-manager overhead around the codec
  hot path (``ProfiledCodec`` vs the bare codec);
* the per-event cost of feeding a :class:`TraceRecorder` through the
  ``(kind, attrs)`` transport observer.

It also surfaces the per-phase breakdown (encrypt / encode / decode /
evaluate) of one SIES epoch through the unified registry — the
"profiling hooks surfaced in benchmarks" deliverable.

Run with::

    PYTHONPATH=src pytest benchmarks/test_obs_profiling.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SIESProtocol
from repro.obs import MetricsRegistry, PhaseProfiler, ProfiledCodec, TraceRecorder

SEED = 2011
BATCH = 512
EPOCH = 1


@pytest.fixture(scope="module")
def sies_frame():
    protocol = SIESProtocol(64, seed=SEED)
    codec = protocol.wire_codec()
    psr = protocol.create_source(0).initialize(EPOCH, 1234)
    return protocol, codec, psr, codec.encode(psr)


def test_bare_codec_decode(benchmark, sies_frame) -> None:
    _, codec, _, frame = sies_frame

    def run():
        for _ in range(BATCH):
            codec.decode(frame)

    benchmark(run)


def test_profiled_codec_decode(benchmark, sies_frame) -> None:
    """Same decode loop through ProfiledCodec: the profiler tax."""
    _, codec, _, frame = sies_frame
    profiler = PhaseProfiler()
    profiled = ProfiledCodec(codec, profiler)

    def run():
        for _ in range(BATCH):
            profiled.decode(frame)

    benchmark(run)
    snapshot = profiler.snapshot()
    assert snapshot["decode"]["calls"] >= BATCH
    benchmark.extra_info["profiled_decode_calls"] = snapshot["decode"]["calls"]


def test_trace_recorder_event_rate(benchmark) -> None:
    """Raw (kind, attrs) → ObsEvent recording throughput."""
    recorder = TraceRecorder(substrate="runtime")
    attrs = {
        "time": 1.0, "epoch": EPOCH, "uid": 1, "attempt": 0,
        "edge": "S-A", "sender": 0, "receiver": 8,
    }

    def run():
        recorder.reset()
        for _ in range(BATCH):
            recorder.record(
                "attempt",
                epoch=attrs["epoch"], edge=attrs["edge"],
                sender=attrs["sender"], receiver=attrs["receiver"],
                time=attrs["time"], attempt=attrs["attempt"], uid=attrs["uid"],
            )

    benchmark(run)


def test_sies_epoch_phase_breakdown(benchmark, sies_frame) -> None:
    """One full SIES epoch with every phase timed and published."""
    protocol, codec, _, _ = sies_frame
    profiler = PhaseProfiler()
    profiled = ProfiledCodec(codec, profiler)
    sources = [protocol.create_source(i) for i in range(protocol.num_sources)]
    aggregator = protocol.create_aggregator()
    querier = protocol.create_querier()

    epochs = iter(range(1, 100_000))

    def run():
        epoch = next(epochs)
        psrs = []
        with profiler.phase("encrypt"):
            for sid, source in enumerate(sources):
                psrs.append(source.initialize(epoch, 100 + sid))
        frames = [profiled.encode(psr) for psr in psrs]
        received = [profiled.decode(frame) for frame in frames]
        with profiler.phase("combine"):
            merged = aggregator.finalize_for_querier(aggregator.merge(epoch, received))
        with profiler.phase("evaluate"):
            result = querier.evaluate(epoch, merged)
        assert result.verified

    benchmark(run)
    registry = MetricsRegistry()
    profiler.publish(registry, substrate="benchmark")
    snapshot = profiler.snapshot()
    for phase in ("encrypt", "encode", "decode", "combine", "evaluate"):
        assert snapshot[phase]["calls"] > 0
        benchmark.extra_info[f"{phase}_seconds_per_epoch"] = (
            snapshot[phase]["seconds"] / snapshot[phase]["calls"]
        )
    assert "sies_phase_seconds_total" in registry.render_prometheus()
