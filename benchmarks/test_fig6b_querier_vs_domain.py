"""Figure 6(b) — computational cost at the querier vs. the domain.

Benchmarks one evaluation at N=1024 for domains ×1 and ×10⁴ and
asserts the figure's flat shape: the querier's work is dominated by the
per-source key/share recomputation (SIES/CMT) or the J·N seed HMACs and
folds (SECOA_S), none of which depend on the value domain.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.secoa.secoa_sum import SECOASumProtocol
from repro.core.protocol import SIESProtocol
from repro.datasets.workload import DomainScaledWorkload
from repro.experiments.common import build_final_psr

N = 1024
J = 300
SEED = 2011


def _bench(benchmark, protocol, scale: int, rounds: int) -> None:
    workload = DomainScaledWorkload(N, scale=scale, seed=SEED)
    querier = protocol.create_querier()
    final = build_final_psr(protocol, 1, [workload(i, 1) for i in range(N)])
    benchmark.pedantic(querier.evaluate, args=(1, final), rounds=rounds, iterations=1)


@pytest.mark.parametrize("scale", [1, 10000])
@pytest.mark.benchmark(group="fig6b-querier")
def test_sies_querier_vs_domain(benchmark, scale: int) -> None:
    _bench(benchmark, SIESProtocol(N, seed=SEED), scale, rounds=5)


@pytest.mark.parametrize("scale", [1, 10000])
@pytest.mark.benchmark(group="fig6b-querier")
def test_secoa_querier_vs_domain(benchmark, scale: int) -> None:
    _bench(benchmark, SECOASumProtocol(N, num_sketches=J, seed=SEED), scale, rounds=2)


def test_fig6b_flatness() -> None:
    def evaluate_time(scale: int) -> float:
        protocol = SIESProtocol(N, seed=SEED)
        workload = DomainScaledWorkload(N, scale=scale, seed=SEED)
        final = build_final_psr(protocol, 1, [workload(i, 1) for i in range(N)])
        querier = protocol.create_querier()
        start = time.perf_counter()
        querier.evaluate(1, final)
        return time.perf_counter() - start

    low, high = evaluate_time(1), evaluate_time(10000)
    assert high < 3 * low and low < 3 * high  # flat within noise
