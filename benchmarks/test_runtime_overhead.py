"""Event-runtime overhead: RuntimeSimulator vs NetworkSimulator.

Two questions for the perf record:

1. What does the discrete-event machinery itself cost?  On a lossless
   network both simulators do identical crypto work (the lossless
   parity test pins identical op counters), so the wall-clock delta is
   pure scheduler + transport overhead.
2. What do retransmissions cost as loss grows?  The sweep runs the
   same configuration at increasing per-hop loss rates; crypto work is
   *roughly* constant (subsets shrink slightly), so the growth is the
   ARQ paying for the lossy links.

Run with::

    PYTHONPATH=src pytest benchmarks/test_runtime_overhead.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SIESProtocol
from repro.datasets.workload import DomainScaledWorkload
from repro.network.simulator import NetworkSimulator, SimulationConfig
from repro.network.topology import build_complete_tree
from repro.runtime import FaultPlan, RuntimeConfig, RuntimeSimulator

N = 64
EPOCHS = 16
SEED = 2011


def _protocol_stack():
    protocol = SIESProtocol(N, seed=SEED)
    tree = build_complete_tree(N, fanout=4)
    workload = DomainScaledWorkload(N, scale=100, seed=SEED)
    return protocol, tree, workload


def _fresh_runtime(loss_rate: float) -> RuntimeSimulator:
    protocol, tree, workload = _protocol_stack()
    config = RuntimeConfig(
        num_epochs=EPOCHS,
        plan=FaultPlan.lossless() if loss_rate == 0.0 else FaultPlan.uniform_loss(loss_rate),
        seed=SEED,
    )
    return RuntimeSimulator(protocol, tree, workload, config)


# ----------------------------------------------------------------------
# Lossless: the price of the event loop itself
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="runtime-overhead")
def test_network_simulator_baseline(benchmark) -> None:
    state: dict = {}

    def setup():
        protocol, tree, workload = _protocol_stack()
        state["sim"] = NetworkSimulator(
            protocol, tree, workload, SimulationConfig(num_epochs=EPOCHS)
        )
        return (), {}

    metrics = benchmark.pedantic(lambda: state["sim"].run(), setup=setup, rounds=3, iterations=1)
    assert metrics.all_verified()


@pytest.mark.benchmark(group="runtime-overhead")
def test_runtime_simulator_lossless(benchmark) -> None:
    state: dict = {}

    def setup():
        state["sim"] = _fresh_runtime(0.0)
        return (), {}

    metrics = benchmark.pedantic(lambda: state["sim"].run(), setup=setup, rounds=3, iterations=1)
    assert metrics.acceptance_rate() == 1.0
    assert metrics.retransmissions_total() == 0
    benchmark.extra_info["events_processed"] = metrics.events_processed


# ----------------------------------------------------------------------
# The retransmission-cost sweep
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="runtime-loss-sweep")
@pytest.mark.parametrize("loss_rate", [0.0, 0.05, 0.2, 0.4])
def test_retransmission_cost(benchmark, loss_rate: float) -> None:
    state: dict = {}

    def setup():
        state["sim"] = _fresh_runtime(loss_rate)
        return (), {}

    metrics = benchmark.pedantic(lambda: state["sim"].run(), setup=setup, rounds=3, iterations=1)
    assert metrics.num_epochs == EPOCHS
    benchmark.extra_info["loss_rate"] = loss_rate
    benchmark.extra_info["retransmissions"] = metrics.retransmissions_total()
    benchmark.extra_info["delivery_rate"] = metrics.delivery_rate()
    benchmark.extra_info["events_processed"] = metrics.events_processed
