"""Ablation — pure-Python vs hashlib hash backends (DESIGN.md §8).

SIES's source cost is dominated by its three HMAC evaluations, so the
hash backend is the single biggest lever on absolute numbers.  This
quantifies the gap and checks the protocol is backend-agnostic.
"""

from __future__ import annotations

import pytest

from repro.crypto.hashes import get_default_backend, set_default_backend
from repro.crypto.hmac import HM256
from repro.core.protocol import SIESProtocol
from repro.datasets.workload import UniformWorkload

KEY = b"\x55" * 20
MSG = (7).to_bytes(8, "big")


@pytest.fixture(autouse=True)
def _restore_backend():
    original = get_default_backend()
    yield
    set_default_backend(original)


@pytest.mark.parametrize("backend", ["hashlib", "pure"])
@pytest.mark.benchmark(group="ablation-hash-backend")
def test_hm256_backend(benchmark, backend: str) -> None:
    benchmark(HM256, KEY, MSG, backend)


@pytest.mark.parametrize("backend", ["hashlib", "pure"])
@pytest.mark.benchmark(group="ablation-hash-backend")
def test_sies_source_with_backend(benchmark, backend: str) -> None:
    set_default_backend(backend)
    protocol = SIESProtocol(64, seed=1)
    source = protocol.create_source(0)
    workload = UniformWorkload(64, 10, 100, seed=2)
    state = {"epoch": 0}

    def run():
        state["epoch"] += 1
        return source.initialize(state["epoch"], workload(0, state["epoch"]))

    benchmark.pedantic(run, rounds=20, iterations=1, warmup_rounds=2)


def test_backends_produce_identical_protocol_results() -> None:
    """Backend choice must never change ciphertexts or verification."""
    results = {}
    for backend in ("hashlib", "pure"):
        set_default_backend(backend)
        protocol = SIESProtocol(4, seed=3)
        psrs = [protocol.create_source(i).initialize(1, 10 + i) for i in range(4)]
        final = protocol.create_aggregator().merge(1, psrs)
        result = protocol.create_querier().evaluate(1, final)
        results[backend] = (final.ciphertext, result.value)
    assert results["hashlib"] == results["pure"]


def test_pure_backend_is_slower_but_bounded() -> None:
    """Sanity on the ablation's premise: pure Python costs more, but by
    an interpreter-level factor, not an algorithmic one."""
    import time

    def timed(backend: str, loops: int = 300) -> float:
        start = time.perf_counter()
        for _ in range(loops):
            HM256(KEY, MSG, backend)
        return time.perf_counter() - start

    timed("pure", 20)  # warmup
    fast, slow = timed("hashlib"), timed("pure")
    assert slow > fast
    assert slow < 3000 * fast
